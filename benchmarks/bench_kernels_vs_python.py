"""Kernel layer vs. the seed's pure-Python loops.

The seed ``SparseMatrix`` stored a dict-of-dicts and walked it with Python
loops in every hot path.  This benchmark reconstructs that implementation as
an in-file baseline and measures the vectorized CSR kernels against it:

* ``matvec`` at ``n = 2000`` — the inner loop of power iteration and of
  every residual check (acceptance floor: >= 5x),
* ``solve_many`` on a 64-column right-hand-side block vs. 64 scalar solves —
  the paper's measure-time-series access pattern (acceptance floor: > 1x).

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_kernels_vs_python.py
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_factored, solve_factored_many
from repro.sparse.csr import SparseMatrix

MATVEC_N = 2000
MATVEC_AVG_DEGREE = 8
MATVEC_REPS = 30

SOLVE_N = 300
SOLVE_AVG_DEGREE = 3
SOLVE_RHS = 64
SOLVE_REPS = 3


class DictOfDictsMatvec:
    """The seed implementation: per-row ``{column: value}`` dicts, Python loops."""

    def __init__(self, matrix: SparseMatrix) -> None:
        self.n = matrix.n
        self.rows: List[Dict[int, float]] = [matrix.row(i) for i in range(matrix.n)]

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        result = np.zeros(self.n, dtype=float)
        for i, row in enumerate(self.rows):
            total = 0.0
            for j, value in row.items():
                total += value * vector[j]
            result[i] = total
        return result


def _random_dd(n: int, avg_degree: int, seed: int) -> SparseMatrix:
    rng = np.random.default_rng(seed)
    nnz = n * avg_degree
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    off = rows != cols
    vals = -0.5 * rng.random(nnz)
    matrix = SparseMatrix.from_coo(n, rows[off], cols[off], vals[off])
    # Make it strictly diagonally dominant so it decomposes without pivoting.
    row_sums = np.abs(matrix.to_dense()).sum(axis=1) if n <= 500 else None
    if row_sums is None:
        row_sums = np.bincount(matrix.coo()[0], weights=np.abs(matrix.data), minlength=n)
    diag = SparseMatrix.from_coo(n, np.arange(n), np.arange(n), 1.0 + row_sums)
    return matrix.add(diag)


def _best_of(reps: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def measure_matvec_speedup() -> Dict[str, float]:
    """Time dict-of-dicts vs. CSR-kernel matvec at ``n = MATVEC_N``."""
    matrix = _random_dd(MATVEC_N, MATVEC_AVG_DEGREE, seed=7)
    baseline = DictOfDictsMatvec(matrix)
    x = np.random.default_rng(1).random(MATVEC_N)
    # Warm up + correctness guard: both paths must agree.
    assert np.allclose(baseline.matvec(x), matrix.matvec(x))
    python_time = _best_of(max(3, MATVEC_REPS // 10), baseline.matvec, x)
    kernel_time = _best_of(MATVEC_REPS, matrix.matvec, x)
    return {
        "n": float(MATVEC_N),
        "nnz": float(matrix.nnz),
        "python_ms": python_time * 1e3,
        "kernel_ms": kernel_time * 1e3,
        "speedup": python_time / kernel_time,
    }


def measure_solve_many_speedup() -> Dict[str, float]:
    """Time 64 scalar solves vs. one batched ``solve_many`` on the same factors."""
    matrix = _random_dd(SOLVE_N, SOLVE_AVG_DEGREE, seed=11)
    ordering = markowitz_ordering(matrix)
    factors = crout_decompose(ordering.apply(matrix))
    block = np.random.default_rng(2).random((SOLVE_N, SOLVE_RHS))

    def looped() -> np.ndarray:
        return np.column_stack(
            [solve_factored(factors, block[:, c]) for c in range(SOLVE_RHS)]
        )

    def batched() -> np.ndarray:
        return solve_factored_many(factors, block)

    assert looped().tobytes() == batched().tobytes()
    looped_time = _best_of(SOLVE_REPS, looped)
    batched_time = _best_of(SOLVE_REPS, batched)
    return {
        "n": float(SOLVE_N),
        "rhs": float(SOLVE_RHS),
        "looped_ms": looped_time * 1e3,
        "batched_ms": batched_time * 1e3,
        "speedup": looped_time / batched_time,
    }


def _report(matvec: Dict[str, float], solve: Dict[str, float]) -> None:
    print("\n== CSR kernels vs. seed dict-of-dicts loops ==")
    print(
        f"matvec     n={int(matvec['n'])} nnz={int(matvec['nnz'])}: "
        f"python {matvec['python_ms']:.3f} ms -> kernel {matvec['kernel_ms']:.3f} ms "
        f"({matvec['speedup']:.1f}x)"
    )
    print(
        f"solve_many n={int(solve['n'])} k={int(solve['rhs'])}: "
        f"looped {solve['looped_ms']:.3f} ms -> batched {solve['batched_ms']:.3f} ms "
        f"({solve['speedup']:.1f}x)"
    )


def test_kernels_vs_python(benchmark):
    """Record kernel speedups over the seed's pure-Python loops."""
    from _shared import single_run

    matvec = single_run(benchmark, measure_matvec_speedup)
    solve = measure_solve_many_speedup()
    _report(matvec, solve)
    assert matvec["speedup"] >= 5.0
    assert solve["speedup"] > 1.0


def main() -> int:
    matvec = measure_matvec_speedup()
    solve = measure_solve_many_speedup()
    _report(matvec, solve)
    ok = matvec["speedup"] >= 5.0 and solve["speedup"] > 1.0
    print("PASS" if ok else "FAIL: speedup floors not met")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
