"""Corrected reuse vs verbatim-only QC reuse vs exact serving.

The missing middle between "answer verbatim from a similar cached system"
and "pay a cold factorization": under a
:class:`~repro.policy.corrected.CorrectedPolicy` the planner applies the
``k`` dominant columns of the system delta exactly — a rank-``k``
Sherman–Morrison–Woodbury solve over the parent's cached factors
(:class:`~repro.lu.smw.WoodburyCorrector`) — and certifies only the
*residual* delta.  At a loss bound too tight for verbatim reuse, corrected
reuse keeps serving where :class:`~repro.policy.qc.QCPolicy` falls back to
cold anchors.  The workload also exercises the second corrected tier,
**cross-damping sharing**: every snapshot is additionally queried at a
nearby damping factor, which only the corrected planner can serve from the
cached system at the primary damping.

Three planners run the identical evolving chain and query batches; the
benchmark hard-gates the whole contract:

* the corrected tier actually triggers (``corrected_reuses > 0``, including
  at least one cross-damping record);
* every approximate answer's actual relative L1 deviation from the exact
  answer stays within its certified estimate;
* every rank-``k`` corrected bound is strictly tighter than the verbatim
  ``reuse_loss_bound`` of the same (parent, child) pair;
* the corrected planner performs strictly fewer cold factorizations than
  exact serving, and serves at least ``REUSE_RATIO_FLOOR`` times more miss
  groups without a cold factorization than the verbatim-only QC planner at
  the same ``loss_bound``.

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_corrected_reuse.py
    PYTHONPATH=src python benchmarks/bench_corrected_reuse.py --nodes 150 --snapshots 12
"""

from __future__ import annotations

import argparse
import time
from typing import List, Tuple

import numpy as np

from _shared import host_info_line, percentile_of, track_memory
from bench_qc_serving import build_chain
from repro.core.quality import reuse_loss_bound
from repro.graphs.matrixkind import MatrixKind, damping_delta, system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import CorrectedPolicy, QCPolicy
from repro.query import BatchResult, QueryBatch, QueryPlanner

#: How many times more miss groups the corrected planner must serve without
#: a cold factorization, relative to the verbatim-only QC planner.
REUSE_RATIO_FLOOR = 2.0

#: Float slack for deviation-vs-bound comparisons: the cross-damping bound
#: is *exactly* attained on dangling-free chains (the walk matrix is column
#: stochastic and the Neumann amplification is tight), so the certified
#: inequality holds with equality up to roundoff.
BOUND_SLACK = 1e-9


def serve(
    chain: List[GraphSnapshot], planner: QueryPlanner, alt_damping: float
) -> Tuple[List[float], List[BatchResult], List[QueryBatch]]:
    """Two batches per snapshot: the d=0.85 pair, then one at ``alt_damping``.

    The alternate-damping query arrives as its own batch so that whenever the
    base batch cold-anchored the snapshot, the freshly cached system is
    visible to the corrected scan — that is exactly the cross-damping sharing
    scenario (same snapshot, nearby damping, no factorization).
    """
    times: List[float] = []
    outcomes: List[BatchResult] = []
    batches: List[QueryBatch] = []
    for snapshot in chain:
        base = QueryBatch().add_pagerank(snapshot).add_rwr(snapshot, 1)
        alt = QueryBatch().add_pagerank(snapshot, damping=alt_damping)
        started = time.perf_counter()
        for batch in (base, alt):
            batches.append(batch)
            outcomes.append(planner.run(batch))
        times.append(time.perf_counter() - started)
    return times, outcomes, batches


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="graph size")
    parser.add_argument("--snapshots", type=int, default=24, help="chain length")
    parser.add_argument("--added", type=int, default=3, help="edges added per step")
    parser.add_argument("--removed", type=int, default=2, help="edges removed per step")
    parser.add_argument("--alpha", type=float, default=0.8,
                        help="similarity floor of both policies")
    parser.add_argument("--loss-bound", type=float, default=1.0,
                        help="quality-loss ceiling of both policies")
    parser.add_argument("--max-rank", type=int, default=10,
                        help="correction-rank ceiling of the corrected policy")
    parser.add_argument("--alt-damping", type=float, default=0.84,
                        help="secondary damping factor (cross-damping traffic)")
    parser.add_argument("--seed", type=int, default=42, help="chain seed")
    args = parser.parse_args()
    print(host_info_line())

    chain = build_chain(args.nodes, args.snapshots, args.added, args.removed, args.seed)

    with track_memory() as memory:
        exact_planner = QueryPlanner()
        exact_times, exact_outcomes, _ = serve(chain, exact_planner, args.alt_damping)

        qc_planner = QueryPlanner(
            policy=QCPolicy(alpha=args.alpha, loss_bound=args.loss_bound)
        )
        _, qc_outcomes, _ = serve(chain, qc_planner, args.alt_damping)

        corrected_planner = QueryPlanner(policy=CorrectedPolicy(
            alpha=args.alpha, loss_bound=args.loss_bound, max_rank=args.max_rank
        ))
        corrected_times, corrected_outcomes, batches = serve(
            chain, corrected_planner, args.alt_damping
        )

    exact_factorizations = sum(o.stats.factorizations for o in exact_outcomes)
    qc_served = sum(o.stats.qc_reuses for o in qc_outcomes)
    corrected_verbatim = sum(o.stats.qc_reuses for o in corrected_outcomes)
    corrected_corrected = sum(o.stats.corrected_reuses for o in corrected_outcomes)
    corrected_served = corrected_verbatim + corrected_corrected
    corrected_factorizations = sum(
        o.stats.factorizations for o in corrected_outcomes
    )

    if corrected_corrected == 0:
        raise SystemExit("FAIL: the corrected tier never triggered")

    # Quality contract over every approximate answer of the corrected run.
    worst_estimate = 0.0
    worst_actual = 0.0
    ranks: List[int] = []
    cross_damping_records = 0
    tighter_pairs = 0
    for outcome, exact_outcome, batch in zip(
        corrected_outcomes, exact_outcomes, batches
    ):
        for record in outcome.approximations:
            if record.loss_estimate > args.loss_bound:
                raise SystemExit(
                    f"FAIL: reported loss {record.loss_estimate:.3f} exceeds "
                    f"the configured bound {args.loss_bound:.3f}"
                )
            worst_estimate = max(worst_estimate, record.loss_estimate)
            if record.mode != "verbatim":
                ranks.append(record.rank)
            if record.mode == "cross-damping":
                cross_damping_records += 1
            for position in record.positions:
                truth = exact_outcome[position]
                deviation = float(
                    np.sum(np.abs(outcome[position] - truth))
                    / np.sum(np.abs(truth))
                )
                if deviation > record.loss_estimate * (1.0 + BOUND_SLACK) + 1e-12:
                    raise SystemExit(
                        f"FAIL: actual deviation {deviation:.3e} exceeds the "
                        f"certified estimate {record.loss_estimate:.3e} "
                        f"(mode={record.mode}, rank={record.rank})"
                    )
                worst_actual = max(worst_actual, deviation)
            if record.rank >= 1:
                # The applied correction must buy a strictly tighter bound
                # than answering verbatim from the same parent would have.
                query = batch[record.positions[0]]
                if record.mode == "corrected":
                    entries = system_delta(
                        record.parent_system,
                        record.system,
                        kind=MatrixKind.RANDOM_WALK,
                        damping=query.damping,
                    )
                    uncorrected = reuse_loss_bound(entries, query.damping)
                else:
                    entries = damping_delta(
                        record.system,
                        MatrixKind.RANDOM_WALK,
                        from_damping=0.85,
                        to_damping=query.damping,
                    )
                    uncorrected = reuse_loss_bound(entries, 0.85)
                if record.loss_estimate >= uncorrected:
                    raise SystemExit(
                        f"FAIL: corrected bound {record.loss_estimate:.4f} not "
                        f"strictly tighter than the verbatim bound "
                        f"{uncorrected:.4f} (mode={record.mode}, "
                        f"rank={record.rank})"
                    )
                tighter_pairs += 1

    if cross_damping_records == 0:
        raise SystemExit("FAIL: the cross-damping tier never triggered")
    if corrected_factorizations >= exact_factorizations:
        raise SystemExit(
            f"FAIL: corrected serving factorized {corrected_factorizations}x, "
            f"exact {exact_factorizations}x — no reuse happened"
        )
    ratio = corrected_served / max(qc_served, 1)
    if ratio < REUSE_RATIO_FLOOR:
        raise SystemExit(
            f"FAIL: corrected planner served {corrected_served} miss groups "
            f"without factorization vs {qc_served} for verbatim QC — ratio "
            f"{ratio:.2f}x below the {REUSE_RATIO_FLOOR}x floor"
        )

    pooled_estimates = [
        estimate
        for outcome in corrected_outcomes
        for estimate in outcome.loss_estimates()
    ]
    exact_steady = sum(exact_times[1:])
    corrected_steady = sum(corrected_times[1:])

    print(f"evolving serving workload: {args.snapshots} snapshots x "
          f"(+{args.added}/-{args.removed} edges), n={args.nodes}, "
          f"3 queries per snapshot (one at damping {args.alt_damping})")
    print(f"CorrectedPolicy(alpha={args.alpha}, loss_bound={args.loss_bound}, "
          f"max_rank={args.max_rank})")
    print(f"exact serving (steady)     : {exact_steady * 1e3:9.2f} ms "
          f"({exact_factorizations} factorizations)")
    print(f"corrected serving (steady) : {corrected_steady * 1e3:9.2f} ms "
          f"({corrected_factorizations} factorizations, "
          f"{corrected_verbatim} verbatim + {corrected_corrected} corrected reuses)")
    print(f"speedup vs exact           : "
          f"{exact_steady / corrected_steady:9.2f}x")
    print(f"verbatim-QC planner        : {qc_served} reuses at the same bound "
          f"-> corrected serves {ratio:.1f}x more miss groups "
          f"(floor: {REUSE_RATIO_FLOOR}x)")
    print(f"correction ranks           : {sorted(ranks)}")
    print(f"cross-damping records      : {cross_damping_records}")
    positive_ranks = sum(1 for rank in ranks if rank >= 1)
    print(f"tighter-than-verbatim pairs: {tighter_pairs}/{positive_ranks} "
          f"rank>=1 records")
    print(f"loss estimates (per query) : n={len(pooled_estimates)}  "
          f"p50={percentile_of(pooled_estimates, 0.50):.4f}  "
          f"p99={percentile_of(pooled_estimates, 0.99):.4f}  "
          f"max={worst_estimate:.4f}")
    print(f"worst actual rel-L1 dev    : {worst_actual:.2e}")
    print(f"peak RSS                   : {memory.peak_rss_mib:9.1f} MiB   "
          f"(timeline: {memory.timeline_summary()})")
    print(f"corrected planner cache    : {corrected_planner.cache_info()}")
    print("PASS")


if __name__ == "__main__":
    main()
