"""Sharded serving vs. the serial planner on a cold-dominated workload.

Replays an evolving-snapshot query stream — every batch mixes measures and
damping factors so it spans many distinct system keys, and every run starts
from an empty factor cache, so wall-clock is dominated by the Markowitz +
Crout factorizations that sharding distributes — once through the serial
:class:`~repro.query.planner.QueryPlanner` and once per shard count through
:class:`~repro.shard.planner.ShardedPlanner`.

Three properties are **gated**, not just reported (a non-zero exit fails CI):

1. every sharded answer is bitwise identical to the serial answer;
2. ``member_bytes_shipped`` is exactly zero — snapshot/factor members never
   cross the process boundary (they travel once through the shared-memory
   arena; tasks carry only descriptors and handles);
3. sharded wall-clock stays within ``--tolerance`` of serial (pool spawn is
   excluded — the constructor's ready handshake completes before timing
   starts — so this measures steady-state dispatch overhead, which is what
   a persistent server pays).

On this container's single usable core sharding cannot be *faster*; the
benchmark records dispatch overhead and the per-task byte economics (actual
task bytes vs. what naively pickling the member-bearing queries would ship).
Re-running on a multi-core host to capture real speedup is a standing
ROADMAP task.

Runs standalone (and as the ~30s CI smoke)::

    PYTHONPATH=src python benchmarks/bench_shard_serving.py \
        [--nodes 72] [--snapshots 4] [--shards 1 2] [--tolerance 1.35] \
        [--output results/shard_serving.md]
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from typing import Dict, List, Tuple

from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.query import QueryBatch, QueryPlanner
from repro.shard import ShardedPlanner

from _shared import host_info_line

DAMPINGS = (0.85, 0.6)


def build_stream(nodes: int, snapshots: int) -> List[QueryBatch]:
    """One mixed-measure batch per snapshot of a synthetic evolving chain."""
    config = SyntheticEGSConfig(
        nodes=nodes,
        edge_pool_size=nodes * 7,
        average_degree=4,
        add_remove_ratio=2,
        delta_edges=max(4, nodes // 12),
        snapshots=snapshots,
        directed=True,
        seed=47,
    )
    stream = []
    for snapshot in generate_synthetic_egs(config).snapshots:
        batch = QueryBatch()
        for damping in DAMPINGS:
            batch = (
                batch
                .add_rwr(snapshot, start_node=3, damping=damping)
                .add_ppr(snapshot, seeds=(1, 5, 9), damping=damping)
                .add_pagerank(snapshot, damping=damping)
                .add_hitting_time(snapshot, target=4, damping=damping)
                .add_hitting_time(snapshot, target=7, damping=damping, shared=True)
                .add_salsa_authority(snapshot, damping=damping)
                .add_salsa_hub(snapshot, damping=damping)
            )
        stream.append(batch)
    return stream


def naive_member_bytes(stream: List[QueryBatch]) -> int:
    """Bytes a naive dispatcher would ship: the member-bearing queries."""
    return sum(
        len(pickle.dumps(list(batch), protocol=pickle.HIGHEST_PROTOCOL))
        for batch in stream
    )


def run_serial(stream: List[QueryBatch]) -> Tuple[List[bytes], float]:
    planner = QueryPlanner()
    started = time.perf_counter()
    answers = [a.tobytes() for batch in stream for a in planner.run(batch).results]
    return answers, time.perf_counter() - started


def run_sharded(
    stream: List[QueryBatch], shards: int
) -> Tuple[List[bytes], float, Dict[str, int]]:
    with ShardedPlanner(shards=shards) as planner:  # spawn excluded from timing
        started = time.perf_counter()
        answers = [
            a.tobytes() for batch in stream for a in planner.run(batch).results
        ]
        wall = time.perf_counter() - started
        info = planner.dispatch_info()
    return answers, wall, info


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=72)
    parser.add_argument("--snapshots", type=int, default=4)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--tolerance", type=float, default=1.35,
                        help="max allowed sharded/serial wall-clock ratio")
    parser.add_argument("--output", type=str, default=None,
                        help="optional markdown file to record the results in")
    args = parser.parse_args()

    print(host_info_line())
    stream = build_stream(args.nodes, args.snapshots)
    queries = sum(len(batch) for batch in stream)
    naive_total = naive_member_bytes(stream)
    print(f"shard serving benchmark: n={args.nodes}, {len(stream)} batches, "
          f"{queries} queries, shards={args.shards}")

    serial_answers, serial_wall = run_serial(stream)
    print(f"  serial: {serial_wall:.3f}s")

    failures: List[str] = []
    rows: List[List[str]] = [[
        "serial", f"{serial_wall:.3f}", "1.00x", "-", "-", "-", "-",
    ]]
    for shards in args.shards:
        answers, wall, info = run_sharded(stream, shards)
        bitwise = answers == serial_answers
        tasks = info["tasks_dispatched"]
        task_bytes = info["task_bytes_shipped"] / max(tasks, 1)
        member_bytes = info["member_bytes_shipped"]
        ratio = wall / serial_wall
        print(f"  shards={shards}: {wall:.3f}s ({ratio:.2f}x serial), "
              f"{tasks} tasks, {task_bytes:.0f} task B/task, "
              f"{member_bytes} member B, bitwise={'ok' if bitwise else 'FAILED'}")
        if not bitwise:
            failures.append(f"shards={shards}: answers diverge from serial")
        if member_bytes != 0:
            failures.append(
                f"shards={shards}: {member_bytes} member bytes crossed the "
                f"process boundary (must be 0)"
            )
        if ratio > args.tolerance:
            failures.append(
                f"shards={shards}: wall-clock {ratio:.2f}x serial exceeds the "
                f"{args.tolerance:.2f}x no-regression tolerance"
            )
        rows.append([
            f"sharded ({shards})",
            f"{wall:.3f}",
            f"{ratio:.2f}x",
            str(tasks),
            f"{task_bytes:.0f}",
            str(member_bytes),
            "yes" if bitwise else "NO — INVALID RUN",
        ])

    naive_per_task = naive_total / max(len(stream), 1)
    header = ["configuration", "wall (s)", "vs serial", "tasks",
              "task bytes/task", "member bytes", "bitwise"]
    lines = [
        "# Sharded serving: worker pool with shared-memory CSR",
        "",
        f"- date: {time.strftime('%Y-%m-%d')}",
        host_info_line(),
        f"- workload: {len(stream)} cold batches on an evolving chain "
        f"(n={args.nodes}), {queries} queries across all measures and "
        f"dampings {DAMPINGS} — factorization-dominated",
        "- pool spawn excluded (constructor ready-handshake completes before "
        "timing); gates: bitwise equality, zero member bytes shipped, "
        f"wall-clock within {args.tolerance:.2f}x of serial",
        f"- naive dispatch baseline: pickling the member-bearing queries "
        f"would ship {naive_per_task:.0f} bytes per batch task; descriptor "
        f"routing ships the arena handle instead",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    lines += [
        "",
        "On a single usable core the sharded rows measure steady-state "
        "dispatch overhead, not speedup — factor ownership is disjoint by "
        "digest routing, so a multi-core host splits the dominant "
        "factorization work ~evenly across shards; re-running there is a "
        "standing ROADMAP task.",
        "",
    ]
    markdown = "\n".join(lines)
    print()
    print(markdown)
    if args.output:
        output_path = args.output if os.path.isabs(args.output) else os.path.join(
            os.path.dirname(os.path.abspath(__file__)), args.output
        )
        os.makedirs(os.path.dirname(output_path), exist_ok=True)
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"recorded: {output_path}")

    if failures:
        print("\nGATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
