"""Fast sharded-planner smoke: bitwise answers, zero member shipping."""

from __future__ import annotations

import pytest

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.query import QueryBatch, QueryPlanner
from repro.query.spec import make_query
from repro.shard import ShardedPlanner
from repro.shard.arena import leaked_segments


def _snapshot() -> GraphSnapshot:
    edges = [(i, (i + 3) % 11) for i in range(11)] + [(0, 7), (4, 9), (2, 6)]
    return GraphSnapshot(11, edges)


def _batch(snapshot: GraphSnapshot) -> QueryBatch:
    return QueryBatch([
        make_query("rwr", snapshot, start_node=2),
        make_query("ppr", snapshot, seeds=(1, 4)),
        make_query("pagerank", snapshot),
        make_query("hitting_time", snapshot, target=5),
        make_query("salsa_authority", snapshot),
    ])


def test_small_batch_matches_serial_and_ships_no_members():
    snapshot = _snapshot()
    serial = QueryPlanner().run(_batch(snapshot))
    with ShardedPlanner(shards=2) as planner:
        sharded = planner.run(_batch(snapshot))
        assert [a.tobytes() for a in sharded.results] == [
            a.tobytes() for a in serial.results
        ]
        assert dict(sharded.stats.resolutions) == dict(serial.stats.resolutions)
        assert sharded.stats.groups == serial.stats.groups

        info = planner.dispatch_info()
        assert info["member_bytes_shipped"] == 0
        assert info["tasks_dispatched"] >= 1
        assert info["task_bytes_shipped"] > 0
        # Tasks carry descriptors + handles, never CSR payloads: a batch
        # task stays well under one snapshot's serialized member size.
        assert info["task_bytes_shipped"] < 8192
        assert info["segments_live"] == 1  # one snapshot, shipped once

        names = planner.arena.segment_names()
        assert leaked_segments(names) == (names[0],)
    # close() (via the context manager) unlinks everything ...
    assert leaked_segments(names) == ()
    # ... and further use raises cleanly.
    with pytest.raises(MeasureError):
        planner.run(_batch(snapshot))
    planner.close()  # idempotent


def test_constructor_validation_needs_no_workers():
    with pytest.raises(MeasureError):
        ShardedPlanner(shards=0)
    from repro.query import ResultCache

    with pytest.raises(TypeError):
        ShardedPlanner(shards=2, result_cache=ResultCache(8))
