"""Digest-routed shard assignment: content-stable, hash-seed independent."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.graphs.matrixkind import MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import SystemKey, make_query, system_key
from repro.shard.router import ShardRouter, routing_digest
from repro.store.factorstore import system_key_digest


def _snapshot(seed: int = 0) -> GraphSnapshot:
    edges = [(i, (i + 1 + seed) % 8) for i in range(8)] + [(0, 5)]
    return GraphSnapshot(8, edges)


# --------------------------------------------------------------------- #
# SystemKey.digest: the factor store and the router share one recipe
# --------------------------------------------------------------------- #
def test_digest_matches_factorstore_digest():
    for query in (
        make_query("rwr", _snapshot(), start_node=2),
        make_query("hitting_time", _snapshot(), target=3),
        make_query("pagerank", _snapshot(1), damping=0.7),
    ):
        key = system_key(query)
        assert key.digest() == system_key_digest(key)
        assert len(key.digest()) == 32
        assert key.digest() == key.digest()


def test_digest_is_content_based_not_identity_based():
    a = system_key(make_query("rwr", _snapshot(), start_node=2))
    b = system_key(make_query("ppr", _snapshot(), seeds=(0, 1)))  # same matrix
    assert a.digest() == b.digest()
    c = system_key(make_query("rwr", _snapshot(1), start_node=2))
    assert a.digest() != c.digest()
    d = system_key(make_query("rwr", _snapshot(), start_node=2, damping=0.5))
    assert a.digest() != d.digest()


def test_token_keys_digest_stably():
    key = SystemKey(system=("ems", 7), kind=MatrixKind.RANDOM_WALK, damping=0.85)
    assert key.digest() == key.digest()
    other = SystemKey(system=("ems", 8), kind=MatrixKind.RANDOM_WALK, damping=0.85)
    assert key.digest() != other.digest()


# --------------------------------------------------------------------- #
# Family colocation: keys the ladder can connect land on one shard
# --------------------------------------------------------------------- #
def test_lineage_family_colocates_across_snapshots():
    router = ShardRouter(4)
    same_target = [
        system_key(make_query("hitting_time", _snapshot(seed), target=3))
        for seed in range(4)
    ]
    shards = {router.shard_of(key) for key in same_target}
    assert len(shards) == 1, "refresh lineage split across shards"
    other_target = system_key(make_query("hitting_time", _snapshot(), target=5))
    assert routing_digest(other_target) != routing_digest(same_target[0])


def test_exact_family_is_kind_and_damping():
    a = system_key(make_query("rwr", _snapshot(0), start_node=1))
    b = system_key(make_query("pagerank", _snapshot(3)))
    assert routing_digest(a) == routing_digest(b)
    c = system_key(make_query("pagerank", _snapshot(3), damping=0.5))
    assert routing_digest(a) != routing_digest(c)
    d = system_key(make_query("salsa_authority", _snapshot(0)))
    assert routing_digest(a) != routing_digest(d)


def test_approximate_family_drops_damping():
    a = system_key(make_query("rwr", _snapshot(0), start_node=1))
    c = system_key(make_query("pagerank", _snapshot(3), damping=0.5))
    assert routing_digest(a, policy_exact=False) == routing_digest(c, policy_exact=False)
    d = system_key(make_query("salsa_hub", _snapshot(0)))
    assert routing_digest(a, policy_exact=False) != routing_digest(d, policy_exact=False)


def test_router_validates_and_memoizes():
    with pytest.raises(ValueError):
        ShardRouter(0)
    router = ShardRouter(3, policy_exact=False)
    key = system_key(make_query("rwr", _snapshot(), start_node=0))
    assert router.shard_of(key) == router.shard_of(key)
    assert 0 <= router.shard_of(key) < 3
    assert router.shards == 3
    assert router.policy_exact is False


def test_single_shard_router_maps_everything_to_zero():
    router = ShardRouter(1)
    for seed in range(5):
        key = system_key(make_query("pagerank", _snapshot(seed)))
        assert router.shard_of(key) == 0


# --------------------------------------------------------------------- #
# Interpreter-restart stability: never salted hash()
# --------------------------------------------------------------------- #
_PROBE = """\
import sys

sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})

from test_shard_routing import _snapshot
from repro.query.spec import make_query, system_key
from repro.shard.router import ShardRouter

router = ShardRouter(4)
keys = [
    system_key(make_query("rwr", _snapshot(), start_node=2)),
    system_key(make_query("hitting_time", _snapshot(1), target=3)),
    system_key(make_query("pagerank", _snapshot(2), damping=0.7)),
    system_key(make_query("salsa_hub", _snapshot(3))),
]
print(";".join(f"{{k.digest()}}:{{router.shard_of(k)}}" for k in keys))
"""


@pytest.mark.slow
def test_routing_survives_interpreter_restarts_under_varied_hash_seeds():
    """Digests and shard assignments agree across PYTHONHASHSEED values.

    Salted ``hash()`` differs between interpreters unless PYTHONHASHSEED is
    pinned; anything derived from it would route the same key to different
    shards on restart and orphan persisted factors.  Three interpreters with
    adversarially different seeds must print identical assignments.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.abspath(os.path.join(here, "..", "src"))
    probe = _PROBE.format(src=src, tests=here)
    outputs = []
    for hash_seed in ("0", "1", "4294967295"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env.pop("PYTHONPATH", None)
        result = subprocess.run(
            [sys.executable, "-c", probe],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        outputs.append(result.stdout.strip())
    assert outputs[0]
    assert len(set(outputs)) == 1, f"routing varies with hash seed: {outputs}"
