"""Tests for graph snapshots, deltas, sequences, matrix composition and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError, DimensionError, EmptySequenceError, MeasureError
from repro.graphs.delta import GraphDelta, touched_nodes
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence, ems_from_graphs
from repro.graphs.generators import (
    SyntheticEGSConfig,
    barabasi_albert_edges,
    generate_synthetic_egs,
    growing_egs,
)
from repro.graphs.io import load_egs, save_egs
from repro.graphs.matrixkind import (
    MatrixKind,
    column_normalized_matrix,
    laplacian_matrix,
    measure_matrix,
    symmetric_normalized_matrix,
)
from repro.graphs.snapshot import GraphSnapshot


class TestGraphSnapshot:
    def test_basic_structure(self):
        snapshot = GraphSnapshot(4, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert snapshot.edge_count == 3
        assert (0, 1) in snapshot
        assert snapshot.successors(0) == {1}
        assert snapshot.predecessors(0) == {2}
        assert snapshot.out_degree(0) == 1
        assert snapshot.in_degree(0) == 1

    def test_undirected_mirrors_edges(self):
        snapshot = GraphSnapshot(3, [(0, 1)], directed=False)
        assert (1, 0) in snapshot
        assert snapshot.edge_count == 2

    def test_self_loops_and_duplicates_dropped(self):
        snapshot = GraphSnapshot(3, [(0, 0), (0, 1), (0, 1)])
        assert snapshot.edge_count == 1

    def test_out_of_bounds_edge(self):
        with pytest.raises(DimensionError):
            GraphSnapshot(3, [(0, 3)])

    def test_with_edges(self):
        snapshot = GraphSnapshot(4, [(0, 1), (1, 2)])
        updated = snapshot.with_edges(added=[(2, 3)], removed=[(0, 1)])
        assert (2, 3) in updated and (0, 1) not in updated
        assert (1, 2) in updated

    def test_degree_vectors(self):
        snapshot = GraphSnapshot(3, [(0, 1), (0, 2), (1, 2)])
        assert snapshot.out_degrees() == [2, 1, 0]
        assert snapshot.in_degrees() == [0, 1, 2]
        assert snapshot.average_degree() == pytest.approx(1.0)


class TestGraphDelta:
    def test_between_and_apply(self):
        before = GraphSnapshot(4, [(0, 1), (1, 2)])
        after = GraphSnapshot(4, [(1, 2), (2, 3)])
        delta = GraphDelta.between(before, after)
        assert delta.added == frozenset({(2, 3)})
        assert delta.removed == frozenset({(0, 1)})
        assert delta.apply(before) == after
        assert delta.size == 2

    def test_reversed(self):
        before = GraphSnapshot(3, [(0, 1)])
        after = GraphSnapshot(3, [(1, 2)])
        delta = GraphDelta.between(before, after)
        assert delta.reversed().apply(after) == before

    def test_overlapping_added_removed_rejected(self):
        with pytest.raises(DimensionError):
            GraphDelta(added=[(0, 1)], removed=[(0, 1)])

    def test_touched_nodes(self):
        delta = GraphDelta(added=[(0, 3)], removed=[(2, 1)])
        assert touched_nodes(delta) == (0, 1, 2, 3)

    def test_empty(self):
        snapshot = GraphSnapshot(3, [(0, 1)])
        assert GraphDelta.between(snapshot, snapshot).is_empty()


class TestEvolvingGraphSequence:
    def test_basic_container(self):
        snapshots = [GraphSnapshot(3, [(0, 1)]), GraphSnapshot(3, [(0, 1), (1, 2)])]
        egs = EvolvingGraphSequence(snapshots)
        assert len(egs) == 2
        assert egs.n == 3
        assert egs[1].edge_count == 2
        assert egs.edge_counts() == [1, 2]

    def test_requires_nonempty_and_consistent(self):
        with pytest.raises(EmptySequenceError):
            EvolvingGraphSequence([])
        with pytest.raises(DimensionError):
            EvolvingGraphSequence([GraphSnapshot(3), GraphSnapshot(4)])

    def test_deltas_and_reconstruction(self):
        snapshots = [
            GraphSnapshot(4, [(0, 1)]),
            GraphSnapshot(4, [(0, 1), (1, 2)]),
            GraphSnapshot(4, [(1, 2), (2, 3)]),
        ]
        egs = EvolvingGraphSequence(snapshots)
        rebuilt = EvolvingGraphSequence.from_initial_and_deltas(snapshots[0], egs.deltas())
        assert list(rebuilt) == snapshots

    def test_similarity_statistic(self):
        same = EvolvingGraphSequence([GraphSnapshot(3, [(0, 1)])] * 3)
        assert same.average_successive_similarity() == pytest.approx(1.0)

    def test_subsequence(self):
        snapshots = [GraphSnapshot(3, [(0, 1)])] * 5
        egs = EvolvingGraphSequence(snapshots)
        assert len(egs.subsequence(1, 4)) == 3
        with pytest.raises(EmptySequenceError):
            egs.subsequence(3, 3)


class TestMatrixComposition:
    def graph(self):
        return GraphSnapshot(4, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])

    def test_column_normalized(self):
        w = column_normalized_matrix(self.graph())
        dense = w.to_dense()
        for column in range(4):
            assert np.isclose(dense[:, column].sum(), 1.0)

    def test_random_walk_matrix_is_column_diagonally_dominant(self):
        matrix = measure_matrix(self.graph(), MatrixKind.RANDOM_WALK, damping=0.85)
        # A = I - dW with column-stochastic W is diagonally dominant by columns.
        assert matrix.transpose().is_diagonally_dominant()
        assert np.allclose(np.diag(matrix.to_dense()), 1.0)

    def test_symmetric_walk_matrix_is_symmetric_positive_definite(self):
        matrix = measure_matrix(self.graph(), MatrixKind.SYMMETRIC_WALK, damping=0.8)
        assert matrix.is_symmetric()
        eigenvalues = np.linalg.eigvalsh(matrix.to_dense())
        assert np.min(eigenvalues) > 0.0

    def test_symmetric_normalized_entries(self):
        s = symmetric_normalized_matrix(GraphSnapshot(3, [(0, 1), (1, 2)], directed=False))
        # deg(0)=1, deg(1)=2, deg(2)=1
        assert s.get(0, 1) == pytest.approx(1.0 / np.sqrt(2))
        assert s.get(0, 1) == s.get(1, 0)

    def test_laplacian(self):
        lap = laplacian_matrix(GraphSnapshot(3, [(0, 1), (1, 2)], directed=False))
        dense = lap.to_dense()
        assert np.allclose(dense.sum(axis=1), 0.0)
        matrix = measure_matrix(
            GraphSnapshot(3, [(0, 1), (1, 2)], directed=False), MatrixKind.LAPLACIAN
        )
        assert matrix.is_symmetric()

    def test_invalid_damping_rejected(self):
        with pytest.raises(MeasureError):
            measure_matrix(self.graph(), MatrixKind.RANDOM_WALK, damping=1.0)


class TestEvolvingMatrixSequence:
    def test_from_graphs(self, tiny_ems):
        assert len(tiny_ems) == 6
        assert tiny_ems.n == 40
        # Random-walk matrices are diagonally dominant by columns.
        assert all(matrix.transpose().is_diagonally_dominant() for matrix in tiny_ems)

    def test_deltas_align_with_matrices(self, tiny_ems):
        deltas = tiny_ems.deltas()
        assert len(deltas) == len(tiny_ems) - 1
        rebuilt = tiny_ems[0].to_dense()
        for delta, target in zip(deltas, list(tiny_ems)[1:]):
            for (i, j), value in delta.items():
                rebuilt[i, j] += value
            assert np.allclose(rebuilt, target.to_dense(), atol=1e-12)

    def test_symmetry_check(self, tiny_ems, tiny_symmetric_ems):
        assert not tiny_ems.is_symmetric()
        assert tiny_symmetric_ems.is_symmetric()

    def test_subsample_and_subsequence(self, tiny_ems):
        assert len(tiny_ems.subsample(2)) == 3
        assert len(tiny_ems.subsequence(1, 4)) == 3
        with pytest.raises(DimensionError):
            tiny_ems.subsample(0)

    def test_requires_nonempty(self):
        with pytest.raises(EmptySequenceError):
            EvolvingMatrixSequence([])

    def test_ems_from_graphs_with_limit(self):
        egs = growing_egs(nodes=20, snapshots=6, initial_edges=30, edges_per_step=4)
        ems = ems_from_graphs(egs, limit=3)
        assert len(ems) == 3


class TestGenerators:
    def test_barabasi_albert_shape(self, rng):
        edges = barabasi_albert_edges(50, 3, rng)
        assert len(edges) >= 3 * (50 - 3)
        assert all(0 <= u < 50 and 0 <= v < 50 for u, v in edges)

    def test_synthetic_generator_respects_parameters(self):
        config = SyntheticEGSConfig(
            nodes=60, edge_pool_size=500, average_degree=3, delta_edges=10,
            snapshots=8, seed=1,
        )
        egs = generate_synthetic_egs(config)
        assert len(egs) == 8
        assert egs.n == 60
        assert abs(egs[0].edge_count - 180) <= 5
        # Successive snapshots must stay very similar (small delta).
        assert egs.average_successive_similarity() > 0.9

    def test_synthetic_generation_is_deterministic(self):
        config = SyntheticEGSConfig(nodes=40, edge_pool_size=320, snapshots=5, seed=11,
                                    average_degree=3, delta_edges=8)
        assert list(generate_synthetic_egs(config)) == list(generate_synthetic_egs(config))

    def test_synthetic_invalid_configs(self):
        with pytest.raises(DatasetError):
            SyntheticEGSConfig(nodes=1).validate()
        with pytest.raises(DatasetError):
            SyntheticEGSConfig(nodes=100, edge_pool_size=50).validate()
        with pytest.raises(DatasetError):
            SyntheticEGSConfig(nodes=10, edge_pool_size=100, average_degree=20).validate()

    def test_growing_egs_grows(self):
        egs = growing_egs(nodes=30, snapshots=5, initial_edges=40, edges_per_step=5)
        counts = egs.edge_counts()
        assert all(b >= a for a, b in zip(counts, counts[1:]))


class TestEGSIO:
    def test_round_trip(self, tmp_path):
        egs = growing_egs(nodes=15, snapshots=4, initial_edges=20, edges_per_step=3)
        path = tmp_path / "sample.egs"
        save_egs(egs, path)
        loaded = load_egs(path)
        assert list(loaded) == list(egs)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_egs(tmp_path / "missing.egs")

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.egs"
        path.write_text("not an egs file\n")
        with pytest.raises(DatasetError):
            load_egs(path)
