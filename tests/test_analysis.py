"""Tests for the analysis helpers (key moments, proximity rankings, link prediction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.keymoments import (
    detect_step_changes,
    detect_trends,
    summarize_moments,
)
from repro.analysis.linkpred import predict_links, proximity_trend
from repro.analysis.proximity import proximity_rankings
from repro.datasets.patent import PatentConfig, generate_patent_dataset
from repro.errors import MeasureError
from repro.graphs.generators import growing_egs
from repro.graphs.snapshot import GraphSnapshot
from repro.graphs.egs import EvolvingGraphSequence


class TestKeyMoments:
    def test_detects_spike_and_drop(self):
        series = [1.0, 1.0, 1.6, 1.6, 1.0, 1.0]
        moments = detect_step_changes(series, relative_threshold=0.3)
        kinds = [(m.index, m.kind) for m in moments]
        assert (2, "rise") in kinds
        assert (4, "drop") in kinds

    def test_no_false_positives_on_flat_series(self):
        assert detect_step_changes([1.0] * 10, relative_threshold=0.05) == []

    def test_threshold_must_be_positive(self):
        with pytest.raises(MeasureError):
            detect_step_changes([1.0, 2.0], relative_threshold=0.0)

    def test_series_must_be_1d(self):
        with pytest.raises(MeasureError):
            detect_step_changes(np.zeros((3, 3)))

    def test_detects_downtrend(self):
        series = list(np.linspace(2.0, 1.0, 20))
        moments = detect_trends(series, window=8, relative_threshold=0.2)
        assert any(m.kind == "downtrend" for m in moments)

    def test_detects_uptrend(self):
        series = list(np.linspace(1.0, 2.0, 20))
        moments = detect_trends(series, window=8, relative_threshold=0.2)
        assert any(m.kind == "uptrend" for m in moments)

    def test_window_validation(self):
        with pytest.raises(MeasureError):
            detect_trends([1.0, 2.0], window=1)

    def test_summary_text(self):
        moments = detect_step_changes([1.0, 2.0], relative_threshold=0.5)
        text = summarize_moments(moments)
        assert "rise" in text
        assert summarize_moments([]) == "no key moments detected"


class TestProximityTrend:
    def test_positive_and_negative_slopes(self):
        assert proximity_trend([1.0, 2.0, 3.0]) > 0
        assert proximity_trend([3.0, 2.0, 1.0]) < 0
        assert proximity_trend([5.0]) == 0.0


class TestLinkPrediction:
    def build_egs(self):
        """Node 0 gets progressively closer to node 4 but never links to it."""
        snapshots = []
        base_edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)]
        extra = [(1, 4), (2, 4), (1, 3), (2, 3)]
        current = list(base_edges)
        for step in range(5):
            snapshots.append(GraphSnapshot(6, current))
            if step < len(extra):
                current = current + [extra[step]]
        return EvolvingGraphSequence(snapshots)

    def test_predicts_increasingly_close_node(self):
        egs = self.build_egs()
        predictions = predict_links(egs, source=0, top_k=2, algorithm="CINC", alpha=0.9)
        assert predictions
        predicted_targets = [p.target for p in predictions]
        assert 4 in predicted_targets or 3 in predicted_targets
        # Existing neighbours are never predicted.
        assert 1 not in predicted_targets

    def test_top_k_zero(self):
        assert predict_links(self.build_egs(), source=0, top_k=0) == []

    def test_candidate_restriction(self):
        egs = self.build_egs()
        predictions = predict_links(egs, source=0, top_k=3, candidates=[3])
        assert [p.target for p in predictions] == [3]

    def test_invalid_source(self):
        with pytest.raises(MeasureError):
            predict_links(self.build_egs(), source=77)

    def test_scores_are_finite_and_ordered(self):
        egs = growing_egs(nodes=15, snapshots=4, initial_edges=30, edges_per_step=4, seed=2)
        predictions = predict_links(egs, source=0, top_k=5, algorithm="CLUDE", alpha=0.9)
        scores = [p.combined_score for p in predictions]
        assert all(np.isfinite(score) for score in scores)
        assert scores == sorted(scores, reverse=True)


class TestProximityRankings:
    def test_rising_company_trajectory(self):
        dataset = generate_patent_dataset(PatentConfig())
        rankings = proximity_rankings(dataset, alpha=0.9)
        assert rankings.scores.shape == rankings.ranks.shape
        assert rankings.company_names[0] == "RISING"
        rising = rankings.rank_series(0)
        # Starts away from the top, finishes at/near the top.
        assert rising[0] > rising[-1]
        assert rankings.is_steadily_rising(0)

    def test_ranks_are_permutations_per_year(self):
        dataset = generate_patent_dataset(
            PatentConfig(companies=4, years=6, patents_per_company_initial=4,
                         patents_per_company_per_year=2)
        )
        rankings = proximity_rankings(dataset, alpha=0.9)
        companies = rankings.ranks.shape[1]
        for year_ranks in rankings.ranks:
            assert sorted(year_ranks.tolist()) == list(range(1, companies + 1))
