"""Shared-memory arena lifecycle: refcounts, closes, crashes, zero-copy."""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.graphs.matrixkind import MatrixKind, measure_matrix
from repro.graphs.snapshot import GraphSnapshot
from repro.shard.arena import (
    SharedMemoryArena,
    attach_matrix,
    attach_snapshot,
    leaked_segments,
)


def _snapshot(seed: int = 0) -> GraphSnapshot:
    edges = [(i, (i + 1 + seed) % 9) for i in range(9)] + [(0, 4), (2, 7)]
    return GraphSnapshot(9, edges)


# --------------------------------------------------------------------- #
# Refcounting and close semantics
# --------------------------------------------------------------------- #
def test_put_snapshot_dedups_by_content_and_refcounts():
    arena = SharedMemoryArena()
    snapshot = _snapshot()
    same_content = GraphSnapshot(snapshot.n, sorted(snapshot.edges, reverse=True))
    first = arena.put_snapshot(snapshot)
    second = arena.put_snapshot(same_content)
    assert second == first
    assert arena.refcount(first) == 2
    assert len(arena) == 1
    arena.release(first)
    assert arena.refcount(first) == 1
    assert leaked_segments([first.segment]) == (first.segment,)
    arena.release(first)
    assert arena.refcount(first) == 0
    assert leaked_segments([first.segment]) == ()
    arena.close()


def test_release_past_zero_and_unknown_handle_are_noops():
    arena = SharedMemoryArena()
    handle = arena.put_snapshot(_snapshot())
    arena.release(handle)
    arena.release(handle)  # already unlinked; must not raise
    assert arena.refcount(handle) == 0
    arena.close()


def test_close_unlinks_everything_and_double_close_is_noop():
    arena = SharedMemoryArena()
    handles = [arena.put_snapshot(_snapshot(seed)) for seed in range(3)]
    matrix = measure_matrix(_snapshot(), MatrixKind.RANDOM_WALK, 0.85)
    handles.append(arena.put_matrix(matrix))
    names = arena.segment_names()
    assert len(names) == 4
    arena.close()
    assert leaked_segments(names) == ()
    arena.close()  # double close: no-op, no raise
    with pytest.raises(ValueError):
        arena.put_snapshot(_snapshot())


def test_context_manager_closes():
    with SharedMemoryArena() as arena:
        handle = arena.put_snapshot(_snapshot())
        names = arena.segment_names()
        assert leaked_segments(names) == (handle.segment,)
    assert leaked_segments(names) == ()


# --------------------------------------------------------------------- #
# Attach fidelity and zero-copy
# --------------------------------------------------------------------- #
def test_attach_snapshot_reconstructs_equal_graph():
    arena = SharedMemoryArena()
    for directed in (True, False):
        snapshot = GraphSnapshot(7, [(0, 1), (1, 2), (2, 5), (6, 3)], directed=directed)
        handle = arena.put_snapshot(snapshot)
        rebuilt, shm = attach_snapshot(handle)
        assert rebuilt == snapshot
        assert rebuilt.directed == snapshot.directed
        shm.close()
    arena.close()


def test_attach_matrix_is_zero_copy_and_read_only():
    arena = SharedMemoryArena()
    matrix = measure_matrix(_snapshot(), MatrixKind.RANDOM_WALK, 0.85)
    handle = arena.put_matrix(matrix)
    view, shm = attach_matrix(handle)

    ref_indptr, ref_indices, ref_data = matrix.csr_arrays()
    indptr, indices, data = view.csr_arrays()
    np.testing.assert_array_equal(indptr, ref_indptr)
    np.testing.assert_array_equal(indices, ref_indices)
    assert data.tobytes() == ref_data.tobytes()

    # Zero-copy: the view's arrays alias the shared segment buffer.
    segment = np.frombuffer(shm.buf, dtype=np.uint8)
    assert np.shares_memory(data, segment)
    assert np.shares_memory(indptr, segment)
    # Writes are rejected — the segment is an immutable publication.
    with pytest.raises(ValueError):
        data[0] = 123.0
    del indptr, indices, data, segment, view
    import gc

    gc.collect()
    shm.close()
    arena.close()


def test_matrix_roundtrip_solves_bitwise_identically():
    snapshot = _snapshot()
    matrix = measure_matrix(snapshot, MatrixKind.SYMMETRIC_WALK, 0.7)
    arena = SharedMemoryArena()
    handle = arena.put_matrix(matrix)
    view, shm = attach_matrix(handle)
    x = np.linspace(-1.0, 1.0, matrix.n)
    assert matrix.matvec(x).tobytes() == view.matvec(x).tobytes()
    del view
    import gc

    gc.collect()
    shm.close()
    arena.close()


# --------------------------------------------------------------------- #
# Crash cleanup
# --------------------------------------------------------------------- #
def _hold_segment(handle, started) -> None:
    _, shm = attach_snapshot(handle)
    started.set()
    time.sleep(60)  # killed long before this returns
    shm.close()


def test_killed_attacher_leaks_no_segments():
    """SIGKILL on a worker holding an attached segment leaks nothing.

    Only the parent ever unlinks; the kernel reclaims the dead worker's
    mapping, so after ``arena.close()`` the name is gone from /dev/shm.
    """
    ctx = multiprocessing.get_context("spawn")
    arena = SharedMemoryArena()
    handle = arena.put_snapshot(_snapshot())
    started = ctx.Event()
    worker = ctx.Process(target=_hold_segment, args=(handle, started), daemon=True)
    worker.start()
    assert started.wait(timeout=60), "attacher never started"
    worker.kill()
    worker.join(timeout=30)
    assert not worker.is_alive()
    # The segment survives the worker's death (the parent still owns it)...
    assert leaked_segments([handle.segment]) == (handle.segment,)
    # ...and close() removes it for good.
    arena.close()
    assert leaked_segments([handle.segment]) == ()


def test_leaked_segments_probe_is_tracker_neutral():
    names = [f"psm_repro_test_missing_{os.getpid()}"]
    assert leaked_segments(names) == ()
