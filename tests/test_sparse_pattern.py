"""Tests for sparsity patterns and the matrix edit similarity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.sparse.pattern import SparsityPattern, matrix_edit_similarity


def make_pattern(n, indices):
    return SparsityPattern(n, indices)


class TestConstruction:
    def test_empty_pattern(self):
        pattern = SparsityPattern(4)
        assert len(pattern) == 0
        assert pattern.n == 4

    def test_basic_membership(self):
        pattern = make_pattern(3, [(0, 1), (2, 2)])
        assert (0, 1) in pattern
        assert (1, 0) not in pattern
        assert len(pattern) == 2

    def test_duplicate_indices_collapse(self):
        pattern = make_pattern(3, [(0, 1), (0, 1), (0, 1)])
        assert len(pattern) == 1

    def test_out_of_bounds_rejected(self):
        with pytest.raises(DimensionError):
            make_pattern(3, [(0, 3)])
        with pytest.raises(DimensionError):
            make_pattern(3, [(-1, 0)])

    def test_negative_dimension_rejected(self):
        with pytest.raises(DimensionError):
            SparsityPattern(-1)

    def test_equality_and_hash(self):
        a = make_pattern(3, [(0, 1), (1, 2)])
        b = make_pattern(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_pattern(3, [(0, 1)])


class TestSetAlgebra:
    def test_union_and_intersection(self):
        a = make_pattern(4, [(0, 1), (1, 2)])
        b = make_pattern(4, [(1, 2), (3, 3)])
        assert (a | b).indices == frozenset({(0, 1), (1, 2), (3, 3)})
        assert (a & b).indices == frozenset({(1, 2)})

    def test_difference_and_symmetric_difference(self):
        a = make_pattern(4, [(0, 1), (1, 2)])
        b = make_pattern(4, [(1, 2), (3, 3)])
        assert (a - b).indices == frozenset({(0, 1)})
        assert (a ^ b).indices == frozenset({(0, 1), (3, 3)})

    def test_subset_superset(self):
        a = make_pattern(4, [(0, 1)])
        b = make_pattern(4, [(0, 1), (1, 2)])
        assert a <= b
        assert b >= a
        assert not b <= a

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionError):
            make_pattern(3, []).union(make_pattern(4, []))

    def test_transpose_and_symmetry(self):
        asym = make_pattern(3, [(0, 1)])
        sym = make_pattern(3, [(0, 1), (1, 0)])
        assert not asym.is_symmetric()
        assert sym.is_symmetric()
        assert asym.transpose().indices == frozenset({(1, 0)})

    def test_with_full_diagonal(self):
        pattern = make_pattern(3, [(0, 1)]).with_full_diagonal()
        assert {(0, 0), (1, 1), (2, 2)} <= set(pattern.indices)

    def test_row_and_column_queries(self):
        pattern = make_pattern(4, [(1, 0), (1, 2), (3, 2)])
        assert pattern.row(1) == {0, 2}
        assert pattern.column(2) == {1, 3}

    def test_density(self):
        assert make_pattern(2, [(0, 0), (1, 1)]).density() == pytest.approx(0.5)
        assert SparsityPattern(0).density() == 0.0


class TestMatrixEditSimilarity:
    def test_identical_patterns(self):
        a = make_pattern(3, [(0, 1), (1, 2)])
        assert matrix_edit_similarity(a, a) == pytest.approx(1.0)

    def test_disjoint_patterns(self):
        a = make_pattern(3, [(0, 1)])
        b = make_pattern(3, [(1, 0)])
        assert matrix_edit_similarity(a, b) == pytest.approx(0.0)

    def test_paper_formula(self):
        a = make_pattern(4, [(0, 1), (1, 2), (2, 3)])
        b = make_pattern(4, [(0, 1), (1, 2), (3, 0), (3, 1)])
        expected = 2 * 2 / (3 + 4)
        assert matrix_edit_similarity(a, b) == pytest.approx(expected)

    def test_empty_patterns_are_identical(self):
        assert matrix_edit_similarity(SparsityPattern(3), SparsityPattern(3)) == 1.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            matrix_edit_similarity(SparsityPattern(3), SparsityPattern(4))


index_pairs = st.tuples(st.integers(0, 7), st.integers(0, 7))
pattern_sets = st.frozensets(index_pairs, max_size=30)


@given(a=pattern_sets, b=pattern_sets)
@settings(max_examples=60, deadline=None)
def test_mes_is_symmetric_and_bounded(a, b):
    pa = SparsityPattern(8, a)
    pb = SparsityPattern(8, b)
    similarity = matrix_edit_similarity(pa, pb)
    assert 0.0 <= similarity <= 1.0
    assert similarity == pytest.approx(matrix_edit_similarity(pb, pa))


@given(a=pattern_sets, b=pattern_sets)
@settings(max_examples=60, deadline=None)
def test_union_contains_both_and_intersection_contained(a, b):
    pa = SparsityPattern(8, a)
    pb = SparsityPattern(8, b)
    union = pa | pb
    intersection = pa & pb
    assert pa <= union and pb <= union
    assert intersection <= pa and intersection <= pb


@given(a=pattern_sets)
@settings(max_examples=40, deadline=None)
def test_transpose_is_involution(a):
    pattern = SparsityPattern(8, a)
    assert pattern.transpose().transpose() == pattern
