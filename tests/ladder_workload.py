"""Deterministic differential workload for the resolution-ladder refactor.

This module is imported by ``tests/test_resolution_ladder.py`` and by the
one-shot golden generator.  It runs a fixed serving scenario per resolution
tier — cold, hit, store restore, verbatim reuse, corrected reuse, delta
refresh — across **every registered measure**, and digests each answer's
exact bytes.  The digests captured from the pre-refactor planner are
committed as ``tests/data/ladder_golden.json``; the refactored planner must
reproduce them bit for bit.

Nothing here may depend on planner internals beyond the public surface
(``QueryPlanner``, ``QueryBatch``, ``FactorCache``, stats attribute names)
so the identical code runs against both the monolithic and the ladder
planner.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import CorrectedPolicy, QCPolicy
from repro.query import QueryBatch, QueryPlanner
from repro.query.planner import FactorCache

GOLDEN_RELPATH = "data/ladder_golden.json"

_CONFIG = SyntheticEGSConfig(
    nodes=36,
    edge_pool_size=240,
    average_degree=3,
    add_remove_ratio=2,
    delta_edges=6,
    snapshots=4,
    directed=True,
    seed=90214,
)


def workload_snapshots() -> List[GraphSnapshot]:
    """The fixed evolving chain every scenario draws from."""
    return list(generate_synthetic_egs(_CONFIG).snapshots)


def all_measure_batch(snapshot: GraphSnapshot, damping: float = 0.85) -> QueryBatch:
    """One query per registered measure spec against ``snapshot``."""
    return (
        QueryBatch()
        .add_rwr(snapshot, start_node=3, damping=damping)
        .add_ppr(snapshot, seeds=(1, 5, 9), damping=damping)
        .add_pagerank(snapshot, damping=damping)
        .add_hitting_time(snapshot, target=4, damping=damping)
        .add_hitting_time(snapshot, target=7, damping=damping, shared=True)
        .add_salsa_authority(snapshot, damping=damping)
        .add_salsa_hub(snapshot, damping=damping)
    )


def _digest(array) -> str:
    return hashlib.sha256(array.tobytes()).hexdigest()


def _stats_dict(stats) -> Dict[str, int]:
    """Legacy-named counters — the refactor keeps these as derived properties."""
    return {
        "queries": stats.queries,
        "groups": stats.groups,
        "factorizations": stats.factorizations,
        "cache_hits": stats.cache_hits,
        "direct_answers": stats.direct_answers,
        "refreshes": stats.refreshes,
        "qc_reuses": stats.qc_reuses,
        "corrected_reuses": stats.corrected_reuses,
        "result_hits": stats.result_hits,
    }


def _records_dict(outcome) -> List[Dict[str, object]]:
    return [
        {
            "positions": list(record.positions),
            "similarity": record.similarity.hex(),
            "loss_estimate": record.loss_estimate.hex(),
            "rank": record.rank,
            "mode": record.mode,
        }
        for record in outcome.approximations
    ]


def _run(planner: QueryPlanner, batch: QueryBatch) -> Dict[str, object]:
    outcome = planner.run(batch)
    return {
        "answers": [_digest(answer) for answer in outcome.results],
        "stats": _stats_dict(outcome.stats),
        "records": _records_dict(outcome),
    }


def run_workload(store_dir: str) -> Dict[str, object]:
    """Run every tier scenario; return the JSON-serialisable transcript.

    ``store_dir`` is a fresh directory for the store-restore scenario's
    :class:`~repro.store.FactorStore`.
    """
    snaps = workload_snapshots()
    transcript: Dict[str, object] = {}

    # --- cold then hit: exact planner, same batch twice -------------------
    planner = QueryPlanner()
    transcript["cold"] = _run(planner, all_measure_batch(snaps[0]))
    hit_planner = QueryPlanner(cache=planner.cache, result_cache=0)
    transcript["hit"] = _run(hit_planner, all_measure_batch(snaps[0]))
    # Same batch through the result cache instead: direct answers.
    transcript["result_hit"] = _run(planner, all_measure_batch(snaps[0]))
    transcript["final_cache_info"] = planner.cache.cache_info()

    # --- verbatim (QC policy) reuse: similar sibling snapshot -------------
    qc = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
    transcript["verbatim_seed"] = _run(qc, all_measure_batch(snaps[0]))
    transcript["verbatim_reuse"] = _run(qc, all_measure_batch(snaps[1]))

    # --- corrected (rank-k SMW) reuse: bound too tight for verbatim -------
    corrected = QueryPlanner(
        policy=CorrectedPolicy(alpha=0.0, loss_bound=1e-3, max_rank=8)
    )
    transcript["corrected_seed"] = _run(corrected, all_measure_batch(snaps[0]))
    transcript["corrected_reuse"] = _run(corrected, all_measure_batch(snaps[1]))

    # --- delta refresh: registered evolution, auto_refresh planner --------
    refresher = QueryPlanner(auto_refresh=True)
    transcript["refresh_seed"] = _run(refresher, all_measure_batch(snaps[0]))
    refresher.register_evolution(snaps[0], snaps[1])
    transcript["refresh"] = _run(refresher, all_measure_batch(snaps[1]))
    transcript["refresh_cache_info"] = refresher.cache.cache_info()

    # --- store restore: checkpoint, then a cold cache over the same store -
    from repro.store import FactorStore

    store = FactorStore(store_dir)
    writer = QueryPlanner(store=store)
    transcript["store_seed"] = _run(writer, all_measure_batch(snaps[0]))
    writer.cache.checkpoint()
    warm = QueryPlanner(cache=FactorCache(store=store))
    transcript["store_restore"] = _run(warm, all_measure_batch(snaps[0]))
    transcript["store_cache_info"] = warm.cache.cache_info()

    return transcript


def save_golden(path: str, store_dir: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run_workload(store_dir), handle, indent=1, sort_keys=True)
        handle.write("\n")
