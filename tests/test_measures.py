"""Tests for the graph measures (PR, RWR, PPR, SALSA, DHT, PI, MC, series)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasureError
from repro.graphs.generators import growing_egs
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver, normalize_distribution, rank_of
from repro.measures.hitting_time import discounted_hitting_proximity, discounted_hitting_scores
from repro.measures.monte_carlo import rwr_monte_carlo
from repro.measures.pagerank import pagerank_rhs, pagerank_scores, pagerank_series
from repro.measures.power_iteration import power_iteration_solve, rwr_power_iteration
from repro.measures.ppr import ppr_group_proximity, ppr_scores
from repro.measures.rwr import rwr_proximity, rwr_scores
from repro.measures.salsa import salsa_scores
from repro.measures.timeseries import MeasureSeries


class TestBaseHelpers:
    def test_snapshot_solver_residual(self, tiny_graph, rng):
        solver = SnapshotMeasureSolver(tiny_graph)
        b = rng.random(tiny_graph.n)
        x = solver.solve(b)
        assert np.allclose(solver.matrix.matvec(x), b, atol=1e-9)

    def test_invalid_damping(self, tiny_graph):
        with pytest.raises(MeasureError):
            SnapshotMeasureSolver(tiny_graph, damping=1.5)

    def test_normalize_distribution(self):
        v = normalize_distribution(np.array([1.0, 3.0]))
        assert np.allclose(v, [0.25, 0.75])
        zeros = normalize_distribution(np.zeros(3))
        assert np.allclose(zeros, 0.0)

    def test_rank_of(self):
        ranks = rank_of([0.5, 0.9, 0.1])
        assert ranks.tolist() == [2, 1, 3]


class TestPageRank:
    def test_scores_sum_close_to_one(self, tiny_graph):
        scores = pagerank_scores(tiny_graph)
        # With no dangling-node correction the sum is <= 1 and close to it
        # when most nodes have out-edges.
        assert 0.5 < float(np.sum(scores)) <= 1.0 + 1e-9
        assert np.all(scores >= 0)

    def test_matches_power_iteration_fixed_point(self, tiny_graph):
        from repro.graphs.matrixkind import column_normalized_matrix

        walk = column_normalized_matrix(tiny_graph)
        exact = pagerank_scores(tiny_graph, damping=0.85)
        approx = power_iteration_solve(walk, np.full(tiny_graph.n, 1.0 / tiny_graph.n),
                                       damping=0.85, tolerance=1e-12)
        assert approx.converged
        assert np.allclose(exact, approx.scores, atol=1e-8)

    def test_well_linked_page_ranks_high(self):
        # Node 0 receives links from everyone; it must get the top PageRank.
        n = 6
        edges = [(i, 0) for i in range(1, n)] + [(0, 1), (1, 2)]
        scores = pagerank_scores(GraphSnapshot(n, edges))
        assert int(np.argmax(scores)) == 0

    def test_series_shape(self):
        egs = growing_egs(nodes=25, snapshots=5, initial_edges=50, edges_per_step=5)
        series = pagerank_series(egs, nodes=[0, 3], algorithm="CLUDE", alpha=0.9)
        assert series.shape == (5, 2)
        assert np.all(series >= 0)

    def test_rhs_helper(self):
        rhs = pagerank_rhs(4, damping=0.85)
        assert np.allclose(rhs, 0.0375)


class TestRWRandPPR:
    def test_rwr_distribution_properties(self, tiny_graph):
        scores = rwr_scores(tiny_graph, start_node=0)
        assert np.all(scores >= -1e-12)
        assert scores[0] == np.max(scores)          # restart node dominates
        assert 0.5 < float(np.sum(scores)) <= 1.0 + 1e-9

    def test_rwr_matches_power_iteration(self, tiny_graph):
        exact = rwr_scores(tiny_graph, start_node=2)
        approx = rwr_power_iteration(tiny_graph, start_node=2, tolerance=1e-12)
        assert np.allclose(exact, approx.scores, atol=1e-8)

    def test_rwr_proximity_direct_neighbour_higher(self, tiny_graph):
        # Node 1 is a direct successor of 0; node 3 is two hops away.
        assert rwr_proximity(tiny_graph, 0, 1) > rwr_proximity(tiny_graph, 0, 3)

    def test_ppr_reduces_to_rwr_for_single_seed(self, tiny_graph):
        assert np.allclose(
            ppr_scores(tiny_graph, [4]), rwr_scores(tiny_graph, 4), atol=1e-12
        )

    def test_ppr_group_proximity(self, tiny_graph):
        value = ppr_group_proximity(tiny_graph, seeds=[0, 1], targets=[2, 3])
        scores = ppr_scores(tiny_graph, [0, 1])
        assert value == pytest.approx(float(scores[2] + scores[3]))

    def test_monte_carlo_correlates_with_exact(self, tiny_graph):
        exact = rwr_scores(tiny_graph, start_node=0)
        estimate = rwr_monte_carlo(tiny_graph, start_node=0, walks=4000, seed=3)
        # The MC estimate visits distribution is not identical to the RWR
        # stationary distribution normalisation, but the top node must agree
        # and the correlation must be strongly positive.
        assert int(np.argmax(estimate.scores)) == int(np.argmax(exact))
        correlation = np.corrcoef(exact, estimate.scores)[0, 1]
        assert correlation > 0.8

    def test_monte_carlo_invalid_inputs(self, tiny_graph):
        with pytest.raises(MeasureError):
            rwr_monte_carlo(tiny_graph, start_node=99)
        with pytest.raises(MeasureError):
            rwr_monte_carlo(tiny_graph, start_node=0, walks=0)

    def test_monte_carlo_unseeded_use_raises(self, tiny_graph):
        # Same explicit-randomness policy as repro.graphs.generators: no
        # fallback to global/unseeded randomness anywhere.
        with pytest.raises(MeasureError):
            rwr_monte_carlo(tiny_graph, start_node=0)
        with pytest.raises(MeasureError):
            rwr_monte_carlo(
                tiny_graph, start_node=0, seed=1, rng=np.random.default_rng(1)
            )

    def test_monte_carlo_seed_and_rng_reproducible(self, tiny_graph):
        by_seed = rwr_monte_carlo(tiny_graph, start_node=0, walks=200, seed=11)
        again = rwr_monte_carlo(tiny_graph, start_node=0, walks=200, seed=11)
        by_rng = rwr_monte_carlo(
            tiny_graph, start_node=0, walks=200, rng=np.random.default_rng(11)
        )
        assert by_seed.scores.tobytes() == again.scores.tobytes()
        assert by_seed.scores.tobytes() == by_rng.scores.tobytes()
        assert by_seed.steps == by_rng.steps


class TestSALSAandDHT:
    def test_salsa_scores_shape_and_positivity(self, tiny_graph):
        authority, hub = salsa_scores(tiny_graph)
        assert authority.shape == (tiny_graph.n,)
        assert hub.shape == (tiny_graph.n,)
        assert np.all(authority >= -1e-12) and np.all(hub >= -1e-12)

    def test_salsa_empty_graph_uniform(self):
        authority, hub = salsa_scores(GraphSnapshot(4, []))
        assert np.allclose(authority, 0.25)
        assert np.allclose(hub, 0.25)

    def test_dht_target_is_one(self, tiny_graph):
        scores = discounted_hitting_scores(tiny_graph, target=3)
        assert scores[3] == pytest.approx(1.0)
        assert np.all(scores <= 1.0 + 1e-9)

    def test_dht_closer_nodes_score_higher(self):
        # Chain 0 -> 1 -> 2 -> 3: nodes nearer to the target hit it sooner.
        chain = GraphSnapshot(4, [(0, 1), (1, 2), (2, 3)])
        scores = discounted_hitting_scores(chain, target=3)
        assert scores[2] > scores[1] > scores[0] > 0

    def test_dht_unreachable_is_zero(self):
        graph = GraphSnapshot(3, [(0, 1)])
        scores = discounted_hitting_scores(graph, target=2)
        assert scores[0] == pytest.approx(0.0)
        assert discounted_hitting_proximity(graph, 0, 2, scores=scores) == pytest.approx(0.0)

    def test_dht_invalid_target(self, tiny_graph):
        with pytest.raises(MeasureError):
            discounted_hitting_scores(tiny_graph, target=50)


class TestPowerIteration:
    def test_rejects_bad_damping_and_shape(self, tiny_graph):
        from repro.graphs.matrixkind import column_normalized_matrix

        walk = column_normalized_matrix(tiny_graph)
        with pytest.raises(MeasureError):
            power_iteration_solve(walk, np.ones(tiny_graph.n), damping=1.0)
        with pytest.raises(MeasureError):
            power_iteration_solve(walk, np.ones(3))

    def test_reports_non_convergence(self, tiny_graph):
        from repro.graphs.matrixkind import column_normalized_matrix

        walk = column_normalized_matrix(tiny_graph)
        result = power_iteration_solve(
            walk, np.ones(tiny_graph.n), max_iterations=1, tolerance=1e-15
        )
        assert not result.converged


class TestMeasureSeries:
    def test_series_consistent_with_per_snapshot_measures(self):
        egs = growing_egs(nodes=20, snapshots=4, initial_edges=40, edges_per_step=5)
        series = MeasureSeries(egs, algorithm="CLUDE", alpha=0.9)
        pr = series.pagerank([2, 5])
        assert pr.shape == (4, 2)
        direct = pagerank_scores(egs[2])
        assert pr[2, 0] == pytest.approx(float(direct[2]), abs=1e-8)

        rwr_series = series.rwr(0, targets=[1])
        direct_rwr = rwr_scores(egs[3], 0)
        assert rwr_series[3, 0] == pytest.approx(float(direct_rwr[1]), abs=1e-8)

    def test_group_proximity_series(self):
        egs = growing_egs(nodes=18, snapshots=3, initial_edges=35, edges_per_step=4)
        series = MeasureSeries(egs, algorithm="CINC", alpha=0.9)
        groups = [[0, 1], [2, 3, 4]]
        proximity = series.group_proximity_series(seeds=[5, 6], groups=groups)
        assert proximity.shape == (3, 2)
        assert np.all(proximity >= -1e-12)

    def test_invalid_damping(self):
        egs = growing_egs(nodes=10, snapshots=2, initial_edges=15, edges_per_step=2)
        with pytest.raises(MeasureError):
            MeasureSeries(egs, damping=0.0)


class TestDampingDomains:
    """Per-kind damping domains (regression for the Laplacian boundary).

    ``core.quality.reuse_loss_bound`` documents the undamped Laplacian
    composition ``A = I + L`` under the convention ``damping = 0.0``, but
    ``Query.__post_init__`` used to reject 0.0 for *every* measure.  The
    domain is now per matrix kind: Laplacian systems accept ``[0, 1)``
    (the damping never enters the composition), everything else keeps the
    strict ``(0, 1)``.
    """

    @pytest.fixture()
    def laplacian_spec(self):
        from repro.graphs.matrixkind import MatrixKind
        from repro.query.spec import MeasureSpec, register_spec, unregister_spec

        spec = register_spec(
            MeasureSpec(
                name="lap_boundary_test",
                kind=MatrixKind.LAPLACIAN,
                build_rhs=lambda snapshot, damping, params: np.ones(snapshot.n),
                description="Laplacian smoke measure for the damping boundary",
            )
        )
        yield spec
        unregister_spec("lap_boundary_test")

    def test_laplacian_query_accepts_zero_damping(self, tiny_graph, laplacian_spec):
        from repro.query import QueryPlanner, make_query
        from repro.query.spec import evaluate_block

        query = make_query("lap_boundary_test", tiny_graph, damping=0.0)
        assert query.damping == 0.0
        batch = QueryPlanner().run([query])
        block = evaluate_block("lap_boundary_test", tiny_graph, [{}], damping=0.0)
        assert batch.results[0].tobytes() == block[:, 0].tobytes()

    def test_laplacian_rejects_out_of_range(self, tiny_graph, laplacian_spec):
        from repro.query import make_query

        for bad in (1.0, -0.1, 1.5):
            with pytest.raises(MeasureError):
                make_query("lap_boundary_test", tiny_graph, damping=bad)

    def test_walk_measures_keep_strict_open_interval(self, tiny_graph):
        from repro.query import make_query

        for bad in (0.0, 1.0):
            with pytest.raises(MeasureError):
                make_query("rwr", tiny_graph, damping=bad, start_node=0)
            with pytest.raises(MeasureError):
                make_query("pagerank", tiny_graph, damping=bad)

    def test_matrix_builders_share_the_domain(self, tiny_graph):
        from repro.graphs.matrixkind import MatrixKind, measure_matrix, system_delta

        matrix = measure_matrix(tiny_graph, kind=MatrixKind.LAPLACIAN, damping=0.0)
        assert matrix.n == tiny_graph.n
        with pytest.raises(MeasureError):
            measure_matrix(tiny_graph, kind=MatrixKind.LAPLACIAN, damping=1.5)
        with pytest.raises(MeasureError):
            measure_matrix(tiny_graph, kind=MatrixKind.RANDOM_WALK, damping=0.0)
        # (2, 5) is new in both directions — it changes even the symmetrized
        # Laplacian structure.
        other = GraphSnapshot(
            tiny_graph.n, set(tiny_graph.edges) | {(2, 5)}, directed=True
        )
        delta = system_delta(
            tiny_graph, other, kind=MatrixKind.LAPLACIAN, damping=0.0
        )
        assert delta  # the new edge produced entry changes
        with pytest.raises(MeasureError):
            system_delta(tiny_graph, other, kind=MatrixKind.RANDOM_WALK, damping=1.0)

    def test_server_accepts_laplacian_zero_damping(self, tiny_graph, laplacian_spec):
        from repro.serve import MeasureServer

        with MeasureServer(max_wait_ms=0) as server:
            future = server.submit_measure(
                "lap_boundary_test", tiny_graph, damping=0.0
            )
            answer = future.result(timeout=10)
            assert answer.shape == (tiny_graph.n,)
            with pytest.raises(MeasureError):
                server.submit_measure("rwr", tiny_graph, damping=0.0, start_node=0)
