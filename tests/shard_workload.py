"""Deterministic differential workload for sharded vs. serial serving.

The PR-9 golden harness (``tests/ladder_workload.py``) pinned the serial
planner's exact bytes per resolution tier.  This module re-expresses that
scenario sweep against a *planner factory*, so the identical code drives
both a serial :class:`~repro.query.planner.QueryPlanner` and a
:class:`~repro.shard.planner.ShardedPlanner` with any shard count — the
transcripts (answer digests, legacy stats, per-tier resolution counts,
approximation records, cache counters) must compare equal, which is the
bitwise sharded == serial contract across all six tiers:

- ``cold`` / ``hit``: first and second identical batch on a planner with
  the result cache disabled (second run hits the factor cache);
- ``result_hit``: second identical batch with the result cache on;
- ``verbatim_seed`` / ``verbatim_reuse``: QC policy answers a sibling
  snapshot from the seeded factors verbatim;
- ``corrected_seed`` / ``corrected_reuse``: rank-k SMW-corrected reuse
  under a bound too tight for verbatim;
- ``refresh_seed`` / ``refresh``: registered evolution Bennett-refreshes
  the parent factors;
- ``store_seed`` / ``store_restore``: checkpoint to a factor store, then
  a fresh planner over the same directory restores from disk.

Factories only receive settings that replicate across worker processes
(``auto_refresh`` / ``policy`` / ``result_cache`` / ``store`` as a
directory path) — instance sharing like ``cache=`` is exactly what
sharding replaces.
"""

from __future__ import annotations

from typing import Callable, Dict

from ladder_workload import (
    _digest,
    _records_dict,
    _stats_dict,
    all_measure_batch,
    workload_snapshots,
)

from repro.query import QueryBatch, QueryPlanner

PlannerFactory = Callable[..., object]


def serial_factory(**kwargs) -> QueryPlanner:
    """The reference planner; ``store`` arrives as a directory path."""
    store_dir = kwargs.pop("store", None)
    if store_dir is not None:
        from repro.store import FactorStore

        kwargs["store"] = FactorStore(store_dir)
    return QueryPlanner(**kwargs)


def sharded_factory(shards: int) -> PlannerFactory:
    """A factory producing ``ShardedPlanner(shards=shards, ...)``."""
    from repro.shard import ShardedPlanner

    def factory(**kwargs) -> object:
        return ShardedPlanner(shards=shards, **kwargs)

    return factory


def _close(planner: object) -> None:
    close = getattr(planner, "close", None)
    if close is not None:
        close()


def _run(planner, batch: QueryBatch) -> Dict[str, object]:
    outcome = planner.run(batch)
    return {
        "answers": [_digest(answer) for answer in outcome.results],
        "stats": _stats_dict(outcome.stats),
        "resolutions": dict(outcome.stats.resolutions),
        "records": _records_dict(outcome),
    }


def run_workload(factory: PlannerFactory, store_dir: str) -> Dict[str, object]:
    """Run every tier scenario; return the comparable transcript."""
    snaps = workload_snapshots()
    transcript: Dict[str, object] = {}

    # --- cold then hit: same batch twice, factor cache only ---------------
    planner = factory(result_cache=0)
    try:
        transcript["cold"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["hit"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["hit_cache_info"] = planner.cache_info()
    finally:
        _close(planner)

    # --- result hit: same batch twice through the result cache ------------
    planner = factory()
    try:
        transcript["result_seed"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["result_hit"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["result_cache_info"] = planner.cache_info()
    finally:
        _close(planner)

    # --- verbatim (QC policy) reuse: similar sibling snapshot -------------
    from repro.policy import CorrectedPolicy, QCPolicy

    planner = factory(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
    try:
        transcript["verbatim_seed"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["verbatim_reuse"] = _run(planner, all_measure_batch(snaps[1]))
    finally:
        _close(planner)

    # --- corrected (rank-k SMW) reuse: bound too tight for verbatim -------
    planner = factory(policy=CorrectedPolicy(alpha=0.0, loss_bound=1e-3, max_rank=8))
    try:
        transcript["corrected_seed"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["corrected_reuse"] = _run(planner, all_measure_batch(snaps[1]))
    finally:
        _close(planner)

    # --- delta refresh: registered evolution, auto_refresh planner --------
    planner = factory(auto_refresh=True)
    try:
        transcript["refresh_seed"] = _run(planner, all_measure_batch(snaps[0]))
        planner.register_evolution(snaps[0], snaps[1])
        transcript["refresh"] = _run(planner, all_measure_batch(snaps[1]))
        transcript["refresh_cache_info"] = planner.cache_info()
    finally:
        _close(planner)

    # --- store restore: checkpoint, then a fresh planner over the store ---
    planner = factory(store=store_dir)
    try:
        transcript["store_seed"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["checkpointed"] = planner.checkpoint()
    finally:
        _close(planner)
    planner = factory(store=store_dir)
    try:
        transcript["store_restore"] = _run(planner, all_measure_batch(snaps[0]))
        transcript["store_cache_info"] = planner.cache_info()
    finally:
        _close(planner)

    return transcript
