"""Corrected reuse: rank-k SMW correction and cross-damping sharing.

Four differentials pin the new planner tier end to end:

* **The residual bound is a real bound** — for every certified kind, the
  actual relative L1 deviation of a corrected answer from the exact answer
  never exceeds the certified residual estimate.
* **The bound is monotone in the rank** — applying more delta columns never
  loosens the certificate (``residual_loss_bound`` is non-increasing along
  the mass ranking, reaching exactly ``0.0`` at full rank), and
  :meth:`CorrectedPolicy.correct` returns the *smallest* sufficient rank
  with a float-identical estimate.
* **Rank 0 is verbatim** — a rank-0 :class:`WoodburyCorrector` is a bitwise
  pass-through of the base factors, and wherever plain QC reuse succeeds a
  planner under :class:`CorrectedPolicy` answers bitwise like one under
  :class:`QCPolicy` (the corrected tier only ever runs where verbatim
  failed).
* **Cross-damping sharing is certified, and exact when the delta vanishes**
  — a Laplacian system answers across damping factors bitwise-exactly
  (its ``damping_delta`` is empty), while a walk system pays the
  ``|d' - d| / (1 - max(d, d'))`` certificate.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality import residual_loss_bound, reuse_loss_bound
from repro.errors import (
    ClusteringError,
    DimensionError,
    MeasureError,
    SingularMatrixError,
)
from repro.graphs.matrixkind import (
    MatrixKind,
    damping_delta,
    measure_matrix,
    system_delta,
)
from repro.graphs.snapshot import GraphSnapshot
from repro.lu import (
    WoodburyCorrector,
    crout_decompose,
    markowitz_ordering,
    solve_reordered_system_many,
)
from repro.policy import CorrectedPolicy, CorrectionDecision, QCPolicy
from repro.policy.corrected import ranked_update_columns
from repro.query import QueryBatch, QueryPlanner
from repro.query.planner import ApproximationRecord
from repro.query.spec import MeasureSpec, get_spec, make_query, register_spec, unregister_spec
from repro.serve.stats import StatsCollector
from repro.sparse.csr import SparseMatrix

#: Deviation-vs-bound comparisons allow this relative slack: the
#: cross-damping certificate is *exactly attained* in real arithmetic on
#: dangling-free graphs, so the inequality holds with equality up to
#: roundoff; full-rank corrections certify 0.0 against ~1e-15 float noise.
SLACK = 1e-9
ABS_SLACK = 1e-12


def random_snapshot(rng: np.random.Generator, n: int, edges: int) -> GraphSnapshot:
    pool = set()
    while len(pool) < edges:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pool.add((int(u), int(v)))
    return GraphSnapshot(n, pool, directed=True)


def evolve(
    rng: np.random.Generator, snapshot: GraphSnapshot, additions: int, removals: int
) -> GraphSnapshot:
    existing = sorted(snapshot.edges)
    removed = set()
    for _ in range(min(removals, len(existing) - 1)):
        removed.add(existing[int(rng.integers(0, len(existing)))])
    added = set()
    while len(added) < additions:
        u, v = rng.integers(0, snapshot.n, size=2)
        if u != v and (int(u), int(v)) not in snapshot.edges:
            added.add((int(u), int(v)))
    return snapshot.with_edges(added=added, removed=removed)


def relative_l1_deviation(approx: np.ndarray, truth: np.ndarray) -> float:
    return float(np.sum(np.abs(approx - truth)) / np.sum(np.abs(truth)))


# ---------------------------------------------------------------------- #
# The SMW kernel
# ---------------------------------------------------------------------- #
class TestWoodburyCorrector:
    def _factorized(self, matrix):
        ordering = markowitz_ordering(matrix)
        return crout_decompose(ordering.apply(matrix)), ordering

    def test_matches_dense_corrected_solve(self, rng):
        snapshot = random_snapshot(rng, 20, 70)
        matrix = measure_matrix(snapshot, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        factors, ordering = self._factorized(matrix)
        columns = (3, 7, 11)
        update = 0.05 * rng.normal(size=(20, 3))
        corrector = WoodburyCorrector(factors, ordering, update, columns)
        assert corrector.rank == 3
        assert corrector.columns == columns
        dense = matrix.to_dense()
        for t, column in enumerate(columns):
            dense[:, column] += update[:, t]
        rhs = rng.random(20)
        np.testing.assert_allclose(
            corrector.solve(rhs), np.linalg.solve(dense, rhs), atol=1e-10
        )
        block = rng.random((20, 4))
        np.testing.assert_allclose(
            corrector.solve_many(block), np.linalg.solve(dense, block), atol=1e-10
        )

    def test_rank_zero_is_bitwise_passthrough(self, rng):
        snapshot = random_snapshot(rng, 15, 50)
        matrix = measure_matrix(snapshot, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        factors, ordering = self._factorized(matrix)
        corrector = WoodburyCorrector(factors, ordering, np.zeros((15, 0)), ())
        assert corrector.rank == 0
        block = rng.random((15, 3))
        base = solve_reordered_system_many(factors, ordering, block)
        assert corrector.solve_many(block).tobytes() == base.tobytes()

    def test_shape_and_index_validation(self, rng):
        factors = crout_decompose(SparseMatrix.identity(4))
        with pytest.raises(DimensionError):
            WoodburyCorrector(factors, None, np.zeros((4, 2)), (1,))
        with pytest.raises(DimensionError):
            WoodburyCorrector(factors, None, np.zeros((4, 1)), (9,))
        with pytest.raises(DimensionError):
            WoodburyCorrector(factors, None, np.zeros((4, 2)), (1, 1))
        corrector = WoodburyCorrector(factors, None, np.zeros((4, 0)), ())
        with pytest.raises(DimensionError):
            corrector.solve(np.zeros(5))

    def test_singular_corrected_system_rejected(self):
        # Cancelling a whole column of the identity makes A + UVᵀ singular:
        # the capacitance check must refuse at construction time.
        factors = crout_decompose(SparseMatrix.identity(4))
        update = np.zeros((4, 1))
        update[1, 0] = -1.0
        with pytest.raises(SingularMatrixError):
            WoodburyCorrector(factors, None, update, (1,))


# ---------------------------------------------------------------------- #
# Column ranking and the residual certificate
# ---------------------------------------------------------------------- #
class TestResidualBound:
    def test_ranked_columns_order_and_tiebreak(self):
        entries = {(0, 2): 0.5, (1, 2): -0.25, (0, 0): 0.4, (3, 1): 0.75}
        # Columns 1 and 2 tie at mass 0.75: ascending index breaks the tie.
        assert ranked_update_columns(entries) == [(1, 0.75), (2, 0.75), (0, 0.4)]
        assert ranked_update_columns({}) == []

    def test_residual_bound_reduces_to_reuse_bound(self):
        entries = {(0, 1): 0.2, (2, 1): -0.3, (0, 0): 0.1}
        assert residual_loss_bound(entries, (), 0.5) == reuse_loss_bound(entries, 0.5)
        assert residual_loss_bound(entries, (1,), 0.5) == pytest.approx(0.1 / 0.5)
        assert residual_loss_bound(entries, (0, 1), 0.5) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        damping=st.sampled_from([0.5, 0.85]),
        additions=st.integers(min_value=0, max_value=5),
        removals=st.integers(min_value=0, max_value=3),
    )
    def test_bound_monotone_in_rank(self, seed, damping, additions, removals):
        """More applied columns never loosen the certificate; full rank = 0.0."""
        rng = np.random.default_rng(seed)
        before = random_snapshot(rng, 18, 60)
        after = evolve(rng, before, additions, removals)
        entries = system_delta(
            before, after, kind=MatrixKind.RANDOM_WALK, damping=damping
        )
        ranked = ranked_update_columns(entries)
        bounds = [
            residual_loss_bound(
                entries, tuple(column for column, _ in ranked[:k]), damping
            )
            for k in range(len(ranked) + 1)
        ]
        assert bounds[0] == reuse_loss_bound(entries, damping)
        assert all(left >= right for left, right in zip(bounds, bounds[1:]))
        assert bounds[-1] == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss_bound=st.floats(min_value=0.0, max_value=10.0),
        max_rank=st.integers(min_value=1, max_value=6),
    )
    def test_correct_picks_smallest_sufficient_rank(self, seed, loss_bound, max_rank):
        """The decision is the cheapest admissible one, float-identically."""
        rng = np.random.default_rng(seed)
        before = random_snapshot(rng, 18, 60)
        after = evolve(rng, before, int(rng.integers(0, 5)), int(rng.integers(0, 3)))
        entries = system_delta(before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        policy = CorrectedPolicy(alpha=0.0, loss_bound=loss_bound, max_rank=max_rank)
        decision = policy.correct(entries, amplifier_damping=0.85, similarity=1.0)
        ranked = ranked_update_columns(entries)
        if decision is None:
            best = min(max_rank, len(ranked))
            assert residual_loss_bound(
                entries, tuple(column for column, _ in ranked[:best]), 0.85
            ) > loss_bound
            return
        assert decision.rank <= max_rank
        assert decision.columns == tuple(column for column, _ in ranked[:decision.rank])
        # Float-identical to the quality-layer bound, not merely close.
        assert decision.loss_estimate == residual_loss_bound(
            entries, decision.columns, 0.85
        )
        assert decision.loss_estimate <= loss_bound
        assert decision.uncorrected_estimate == reuse_loss_bound(entries, 0.85)
        if decision.rank:
            cheaper = tuple(column for column, _ in ranked[: decision.rank - 1])
            assert residual_loss_bound(entries, cheaper, 0.85) > loss_bound

    def test_policy_validation(self):
        with pytest.raises(ClusteringError):
            CorrectedPolicy(max_rank=0)
        with pytest.raises(ClusteringError):
            CorrectedPolicy(max_rank=2.5)  # type: ignore[arg-type]
        policy = CorrectedPolicy(alpha=0.5, loss_bound=1.0, max_rank=3)
        assert policy.name == "corrected"
        assert policy.max_rank == 3
        assert policy.supports_correction
        with pytest.raises(MeasureError):
            policy.correct({}, amplifier_damping=1.0, similarity=1.0)
        assert policy.correct({}, amplifier_damping=0.85, similarity=0.2) is None

    def test_decision_preference_order(self):
        cheap = CorrectionDecision(
            similarity=0.9, loss_estimate=0.5, uncorrected_estimate=2.0,
            rank=1, columns=(3,),
        )
        expensive_tighter = dataclasses.replace(
            cheap, rank=4, loss_estimate=0.0, columns=(3, 1, 2, 0)
        )
        assert cheap.preferable_to(expensive_tighter)
        tighter_same_rank = dataclasses.replace(cheap, loss_estimate=0.1)
        assert tighter_same_rank.preferable_to(cheap)


# ---------------------------------------------------------------------- #
# Corrected serving through the planner
# ---------------------------------------------------------------------- #
class TestCorrectedServing:
    @pytest.mark.parametrize("measure,kind", [
        ("pagerank", MatrixKind.RANDOM_WALK),
        ("salsa_authority", MatrixKind.SALSA_AUTHORITY),
        ("salsa_hub", MatrixKind.SALSA_HUB),
    ])
    def test_deviation_within_residual_bound_per_kind(self, measure, kind):
        """(a) For every certified kind, corrected answers honor the bound."""
        rng = np.random.default_rng(3)
        before = random_snapshot(rng, 25, 100)
        after = evolve(rng, before, additions=3, removals=2)
        entries = system_delta(before, after, kind=kind, damping=0.85)
        ranked = ranked_update_columns(entries)
        assert len(ranked) >= 2, "workload sanity: the delta touches columns"
        # A bound exactly at the mid-rank residual forces a partial (rank >= 1,
        # nonzero-residual) correction rather than a full or verbatim one.
        mid = len(ranked) // 2
        loss_bound = ranked[mid][1] / (1.0 - 0.85)
        planner = QueryPlanner(policy=CorrectedPolicy(
            alpha=0.0, loss_bound=loss_bound, max_rank=len(ranked)
        ))
        planner.run(QueryBatch().add(make_query(measure, before)))
        outcome = planner.run(QueryBatch().add(make_query(measure, after)))
        assert outcome.stats.corrected_reuses == 1
        assert outcome.stats.factorizations == 0
        record = outcome.approximations[0]
        assert record.mode == "corrected"
        assert 1 <= record.rank <= mid + 1
        exact = QueryPlanner().run(QueryBatch().add(make_query(measure, after)))
        deviation = relative_l1_deviation(outcome[0], exact[0])
        assert deviation <= record.loss_estimate * (1.0 + SLACK) + ABS_SLACK

    def test_full_rank_correction_is_numerically_exact(self):
        """loss_bound=0 with enough rank: every column applied, ~exact answer."""
        rng = np.random.default_rng(5)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=2, removals=1)
        entries = system_delta(before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        ranked = ranked_update_columns(entries)
        planner = QueryPlanner(policy=CorrectedPolicy(
            alpha=0.0, loss_bound=0.0, max_rank=max(len(ranked), 1)
        ))
        planner.run(QueryBatch().add_pagerank(before))
        outcome = planner.run(QueryBatch().add_pagerank(after).add_rwr(after, 0))
        assert outcome.stats.corrected_reuses == 1
        assert outcome.stats.factorizations == 0
        record = outcome.approximations[0]
        assert record.rank == len(ranked)
        assert record.loss_estimate == 0.0
        exact = QueryPlanner().run(QueryBatch().add_pagerank(after).add_rwr(after, 0))
        for position in (0, 1):
            assert relative_l1_deviation(outcome[position], exact[position]) < 1e-10

    def test_verbatim_reuse_unchanged_under_corrected_policy(self):
        """(c) Wherever plain QC succeeds, CorrectedPolicy is bitwise QC."""
        def serve(policy):
            rng = np.random.default_rng(7)
            before = random_snapshot(rng, 30, 120)
            after = evolve(rng, before, additions=2, removals=1)
            planner = QueryPlanner(policy=policy)
            planner.run(QueryBatch().add_pagerank(before))
            return planner.run(QueryBatch().add_pagerank(after).add_rwr(after, 0))

        qc = serve(QCPolicy(alpha=0.5, loss_bound=50.0))
        corrected = serve(CorrectedPolicy(alpha=0.5, loss_bound=50.0, max_rank=4))
        assert qc.stats.qc_reuses == corrected.stats.qc_reuses == 1
        assert corrected.stats.corrected_reuses == 0
        record = corrected.approximations[0]
        assert record.mode == "verbatim"
        assert record.rank == 0
        for left, right in zip(corrected, qc):
            assert left.tobytes() == right.tobytes()

    def test_cross_damping_shares_at_certified_bound(self):
        rng = np.random.default_rng(11)
        snapshot = random_snapshot(rng, 30, 120)
        planner = QueryPlanner(policy=CorrectedPolicy(
            alpha=0.5, loss_bound=1.0, max_rank=4
        ))
        planner.run(QueryBatch().add_pagerank(snapshot))
        outcome = planner.run(QueryBatch().add_pagerank(snapshot, damping=0.84))
        assert outcome.stats.factorizations == 0
        assert outcome.stats.corrected_reuses == 1
        record = outcome.approximations[0]
        assert record.mode == "cross-damping"
        assert record.rank == 0
        assert record.similarity == 1.0
        # ΔA = (0.85 - 0.84)·W with ‖W‖₁ = 1, amplified by 1/(1 - 0.85).
        assert record.loss_estimate == pytest.approx(0.01 / 0.15)
        exact = QueryPlanner().run(
            QueryBatch().add_pagerank(snapshot, damping=0.84)
        )
        deviation = relative_l1_deviation(outcome[0], exact[0])
        assert deviation <= record.loss_estimate * (1.0 + SLACK) + ABS_SLACK

    def test_laplacian_cross_damping_is_exact(self, rng):
        """(d) The Laplacian ignores damping: its cross-damping delta is
        empty, the certificate is 0.0 and the shared answer bitwise-exact."""
        spec = MeasureSpec(
            name="laplacian_teleport_test",
            kind=MatrixKind.LAPLACIAN,
            build_rhs=get_spec("pagerank").build_rhs,
        )
        register_spec(spec)
        try:
            snapshot = random_snapshot(rng, 20, 60)
            planner = QueryPlanner(policy=CorrectedPolicy(
                alpha=0.9, loss_bound=0.0, max_rank=1
            ))
            planner.run(QueryBatch().add(
                make_query("laplacian_teleport_test", snapshot, damping=0.3)
            ))
            probe = QueryBatch().add(
                make_query("laplacian_teleport_test", snapshot, damping=0.1)
            )
            outcome = planner.run(probe)
            assert outcome.stats.factorizations == 0
            assert outcome.stats.corrected_reuses == 1
            record = outcome.approximations[0]
            assert record.mode == "cross-damping"
            assert record.rank == 0
            assert record.loss_estimate == 0.0
            exact = QueryPlanner().run(QueryBatch().add(
                make_query("laplacian_teleport_test", snapshot, damping=0.1)
            ))
            assert outcome[0].tobytes() == exact[0].tobytes()
        finally:
            unregister_spec("laplacian_teleport_test")

    def test_damping_delta_empty_cases(self, rng):
        snapshot = random_snapshot(rng, 12, 30)
        assert damping_delta(snapshot, MatrixKind.RANDOM_WALK, 0.85, 0.85) == {}
        assert damping_delta(snapshot, MatrixKind.LAPLACIAN, 0.3, 0.1) == {}
        entries = damping_delta(snapshot, MatrixKind.RANDOM_WALK, 0.85, 0.84)
        # ΔA = (0.85 - 0.84)·W, supported on exactly W's stored entries.
        assert entries
        assert reuse_loss_bound(entries, 0.85) == pytest.approx(0.01 / 0.15)

    def test_uncertified_kind_never_corrects(self, rng):
        from repro.query.spec import MeasureSpec

        spec = MeasureSpec(
            name="symwalk_corrected_test",
            kind=MatrixKind.SYMMETRIC_WALK,
            build_rhs=get_spec("pagerank").build_rhs,
        )
        register_spec(spec)
        try:
            before = random_snapshot(rng, 20, 60)
            after = evolve(rng, before, additions=1, removals=0)
            planner = QueryPlanner(policy=CorrectedPolicy(
                alpha=0.0, loss_bound=1e12, max_rank=8
            ))
            planner.run(QueryBatch().add(make_query("symwalk_corrected_test", before)))
            outcome = planner.run(
                QueryBatch().add(make_query("symwalk_corrected_test", after))
            )
            assert outcome.stats.corrected_reuses == 0
            assert outcome.stats.factorizations == 1
        finally:
            unregister_spec("symwalk_corrected_test")

    def test_correction_does_not_alias_the_factor_cache(self):
        rng = np.random.default_rng(13)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=3, removals=2)
        entries = system_delta(before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        planner = QueryPlanner(policy=CorrectedPolicy(
            alpha=0.0, loss_bound=0.0, max_rank=len(ranked_update_columns(entries))
        ))
        planner.run(QueryBatch().add_pagerank(before))
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.corrected_reuses == 1
        # The corrected child was never installed: the cache holds the anchor.
        assert planner.cache_info()["size"] == 1


# ---------------------------------------------------------------------- #
# Audit fields and serving observability
# ---------------------------------------------------------------------- #
class TestAuditAndStats:
    def test_batchresult_loss_estimate_distribution(self):
        rng = np.random.default_rng(17)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=2, removals=1)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.5, loss_bound=50.0))
        cold = planner.run(QueryBatch().add_pagerank(before))
        assert cold.loss_estimates() == ()
        assert cold.loss_estimate_percentile(0.99) == 0.0
        outcome = planner.run(QueryBatch().add_pagerank(after).add_rwr(after, 0))
        record = outcome.approximations[0]
        assert outcome.loss_estimates() == (record.loss_estimate,) * 2
        assert outcome.loss_estimate_percentile(1.0) == record.loss_estimate
        assert outcome.loss_estimate_percentile(0.0) == record.loss_estimate
        with pytest.raises(MeasureError):
            outcome.loss_estimate_percentile(1.5)

    def test_server_stats_count_corrected_separately(self):
        collector = StatsCollector()
        verbatim = ApproximationRecord(
            positions=(0, 1), system="child", parent_system="parent",
            similarity=1.0, loss_estimate=0.5, policy="qc",
        )
        corrected = ApproximationRecord(
            positions=(2,), system="child", parent_system="parent",
            similarity=1.0, loss_estimate=0.1, policy="corrected",
            rank=2, mode="corrected",
        )
        shared = ApproximationRecord(
            positions=(3,), system="child", parent_system="child",
            similarity=1.0, loss_estimate=0.06, policy="corrected",
            rank=0, mode="cross-damping",
        )
        collector.record_batch([], [verbatim, corrected, shared])
        assert collector.approximations_served == 4
        assert collector.corrected_served == 2
        snapshot = collector.snapshot()
        assert snapshot.corrected_served == 2
        assert snapshot.recent_approximations[-1].mode == "cross-damping"

    def test_default_record_fields_are_verbatim(self):
        record = ApproximationRecord(
            positions=(0,), system="a", parent_system="b",
            similarity=1.0, loss_estimate=0.0, policy="qc",
        )
        assert record.rank == 0
        assert record.mode == "verbatim"
