"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.graphs.matrixkind import MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix


def random_dd_matrix(n: int, nnz: int, rng: np.random.Generator) -> SparseMatrix:
    """Return a random sparse, strictly diagonally dominant matrix.

    These matrices have the same qualitative shape as the paper's
    ``A = I - dW`` matrices: unit-order diagonal, small negative off-diagonal
    entries, no pivoting needed.
    """
    dense = np.zeros((n, n))
    for _ in range(nnz):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            dense[i, j] = -0.5 * rng.random()
    for i in range(n):
        dense[i, i] = 1.0 + np.sum(np.abs(dense[i]))
    return SparseMatrix.from_dense(dense)


def perturb_matrix(
    matrix: SparseMatrix, changes: int, rng: np.random.Generator
) -> SparseMatrix:
    """Return a slightly modified copy (random entry tweaks, diagonal kept safe)."""
    dense = matrix.to_dense()
    n = matrix.n
    for _ in range(changes):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        if dense[i, j] != 0.0 and rng.random() < 0.3:
            dense[i, j] = 0.0
        else:
            dense[i, j] = -0.3 * rng.random()
    for i in range(n):
        off = np.sum(np.abs(dense[i])) - abs(dense[i, i])
        dense[i, i] = 1.0 + off
    return SparseMatrix.from_dense(dense)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dd_matrix(rng: np.random.Generator) -> SparseMatrix:
    """A 25x25 diagonally dominant sparse matrix."""
    return random_dd_matrix(25, 90, rng)


@pytest.fixture
def tiny_graph() -> GraphSnapshot:
    """A small directed graph used by measure tests."""
    edges = [
        (0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0),
        (4, 5), (5, 6), (6, 4), (6, 0), (1, 5), (3, 1),
    ]
    return GraphSnapshot(7, edges, directed=True)


@pytest.fixture
def tiny_ems() -> EvolvingMatrixSequence:
    """A short synthetic EMS (directed, random-walk matrices)."""
    config = SyntheticEGSConfig(
        nodes=40, edge_pool_size=320, average_degree=4, delta_edges=10,
        snapshots=6, seed=3,
    )
    egs = generate_synthetic_egs(config)
    return EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK)


@pytest.fixture
def tiny_symmetric_ems() -> EvolvingMatrixSequence:
    """A short symmetric EMS (undirected growth, symmetric-walk matrices)."""
    from repro.graphs.generators import growing_egs

    egs = growing_egs(
        nodes=35, snapshots=6, initial_edges=70, edges_per_step=6, seed=9, directed=False
    )
    return EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
