"""Tests for the simulated datasets (Wiki, DBLP, patent) and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dblp import DBLPConfig, generate_dblp_egs
from repro.datasets.patent import PatentConfig, company_groups, generate_patent_dataset
from repro.datasets.registry import (
    DATASET_LOADERS,
    available_datasets,
    load_dblp,
    load_patent,
    load_patent_egs,
    load_synthetic,
    load_wiki,
)
from repro.graphs.egs import EvolvingGraphSequence
from repro.datasets.wiki import WikiConfig, generate_wiki_egs
from repro.errors import DatasetError
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import MatrixKind


class TestWikiDataset:
    def test_structure_and_growth(self):
        config = WikiConfig(pages=60, snapshots=10, initial_links=250, final_links=450,
                            churn_per_day=3, tracked_page=5, event_gain_day=3,
                            event_dilute_day=7, seed=1)
        egs = generate_wiki_egs(config)
        assert len(egs) == 10
        assert egs.n == 60
        counts = egs.edge_counts()
        # Strong overall growth (the property that makes INC's ordering degrade).
        assert counts[-1] > counts[0] * 1.4
        # High successive similarity (the property that makes clustering work).
        assert egs.average_successive_similarity() > 0.9

    def test_scripted_events_present(self):
        config = WikiConfig(pages=60, snapshots=10, initial_links=250, final_links=400,
                            churn_per_day=2, tracked_page=5, event_gain_day=3,
                            event_dilute_day=7, seed=1)
        egs = generate_wiki_egs(config)
        before_gain = egs[config.event_gain_day - 1].in_degree(config.tracked_page)
        after_gain = egs[config.event_gain_day].in_degree(config.tracked_page)
        assert after_gain >= before_gain + 1

    def test_deterministic(self):
        config = WikiConfig(pages=40, snapshots=5, initial_links=150, final_links=220,
                            seed=9, tracked_page=3, event_gain_day=2, event_dilute_day=4)
        assert list(generate_wiki_egs(config)) == list(generate_wiki_egs(config))

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            WikiConfig(pages=5).validate()
        with pytest.raises(DatasetError):
            WikiConfig(final_links=10).validate()
        with pytest.raises(DatasetError):
            WikiConfig(tracked_page=10_000).validate()


class TestDBLPDataset:
    def test_symmetric_and_growing(self):
        config = DBLPConfig(authors=50, snapshots=8, initial_papers=60, papers_per_day=2, seed=2)
        egs = generate_dblp_egs(config)
        assert len(egs) == 8
        counts = egs.edge_counts()
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
        assert ems.is_symmetric()

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            DBLPConfig(authors=3).validate()
        with pytest.raises(DatasetError):
            DBLPConfig(max_authors_per_paper=1).validate()


class TestPatentDataset:
    def test_structure(self):
        dataset = generate_patent_dataset(PatentConfig(companies=4, years=6,
                                                       patents_per_company_initial=4,
                                                       patents_per_company_per_year=2))
        assert len(dataset.egs) == 6
        groups = company_groups(dataset)
        assert set(groups) == {0, 1, 2, 3}
        # Every company owns the same number of patents.
        sizes = {len(nodes) for nodes in groups.values()}
        assert len(sizes) == 1
        assert dataset.focal_company == 0 and dataset.rising_company == 1
        assert len(dataset.patents_of(0)) == len(groups[0])

    def test_citations_only_accumulate(self):
        dataset = generate_patent_dataset(PatentConfig(companies=4, years=6,
                                                       patents_per_company_initial=4,
                                                       patents_per_company_per_year=2))
        counts = dataset.egs.edge_counts()
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_focal_citations_shift_towards_rising_company(self):
        dataset = generate_patent_dataset(PatentConfig())
        first, last = dataset.egs[0], dataset.egs[len(dataset.egs) - 1]

        def focal_to_rising_share(snapshot):
            focal_citations = 0
            to_rising = 0
            for u, v in snapshot.edges:
                if dataset.company_of[u] == 0:
                    focal_citations += 1
                    if dataset.company_of[v] == 1:
                        to_rising += 1
            return to_rising / max(focal_citations, 1)

        assert focal_to_rising_share(last) > focal_to_rising_share(first)

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            PatentConfig(companies=2).validate()
        with pytest.raises(DatasetError):
            PatentConfig(rising_company_focus=2.0).validate()


class TestRegistry:
    def test_available_datasets_listing(self):
        names = available_datasets()
        assert {"wiki", "dblp", "synthetic", "patent"} <= set(names)

    def test_tiny_scales_load(self):
        assert len(load_wiki("tiny")) > 0
        assert len(load_dblp("tiny")) > 0
        assert len(load_synthetic("tiny")) > 0
        assert len(load_patent("tiny").egs) > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_wiki("huge")

    def test_loaders_cover_every_advertised_dataset(self):
        # Regression: "patent" was advertised by available_datasets() but
        # missing from DATASET_LOADERS, so registry-driven harnesses silently
        # skipped it.  The two views must name exactly the same datasets.
        assert set(DATASET_LOADERS) == set(available_datasets())

    def test_every_loader_yields_an_egs(self):
        for name, loader in DATASET_LOADERS.items():
            egs = loader("tiny")
            assert isinstance(egs, EvolvingGraphSequence), name
            assert len(egs) > 0, name

    def test_patent_egs_loader_matches_labelled_dataset(self):
        egs = load_patent_egs("tiny")
        dataset = load_patent("tiny")
        assert len(egs) == len(dataset.egs)
        assert egs[0] == dataset.egs[0]
        assert egs[len(egs) - 1] == dataset.egs[len(egs) - 1]

    def test_patent_egs_loader_checks_scale(self):
        with pytest.raises(DatasetError):
            load_patent_egs("huge")
