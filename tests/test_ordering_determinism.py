"""Regression tests pinning iteration-order determinism after vectorization.

The dict-of-dicts ``SparseMatrix`` iterated entries in per-row insertion
order, so two logically equal matrices built in different orders could feed
the ordering heuristics differently.  The array-backed CSR layout makes
iteration canonical — row-major, ascending column — and this module pins
that contract so downstream Markowitz / minimum-degree orderings (and the
diagonal-dominance check) stay deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lu.markowitz import markowitz_ordering
from repro.lu.mindegree import minimum_degree_ordering
from repro.sparse.csr import SparseMatrix
from tests.conftest import random_dd_matrix


def _shuffled_copies(matrix: SparseMatrix, rng: np.random.Generator, copies: int = 4):
    """Rebuild the same matrix from triples fed in several random orders."""
    triples = list(matrix.items())
    rebuilt = []
    for _ in range(copies):
        order = rng.permutation(len(triples))
        rebuilt.append(
            SparseMatrix.from_triples(matrix.n, [triples[k] for k in order])
        )
    return rebuilt


class TestItemsIterationOrder:
    def test_items_is_row_major_ascending_columns(self):
        matrix = SparseMatrix(
            4, {(2, 3): 1.0, (0, 1): 2.0, (2, 0): 3.0, (0, 0): 4.0, (3, 2): 5.0}
        )
        keys = [(i, j) for i, j, _ in matrix.items()]
        assert keys == [(0, 0), (0, 1), (2, 0), (2, 3), (3, 2)]
        assert keys == sorted(keys)

    def test_items_order_independent_of_construction_order(self, rng):
        matrix = random_dd_matrix(15, 60, rng)
        reference = list(matrix.items())
        for copy in _shuffled_copies(matrix, rng):
            assert list(copy.items()) == reference

    def test_row_items_ascending(self, rng):
        matrix = random_dd_matrix(10, 40, rng)
        for i in range(10):
            columns = [j for j, _ in matrix.row_items(i)]
            assert columns == sorted(columns)


class TestDiagonalDominanceDeterminism:
    def test_same_verdict_for_all_construction_orders(self, rng):
        dominant = random_dd_matrix(12, 50, rng)
        for copy in _shuffled_copies(dominant, rng):
            assert copy.is_diagonally_dominant()
        weak = SparseMatrix(3, {(0, 0): 0.1, (0, 1): 5.0, (1, 1): 1.0, (2, 2): 1.0})
        for copy in _shuffled_copies(weak, rng):
            assert not copy.is_diagonally_dominant()

    def test_boundary_row_is_weakly_dominant(self):
        # |diag| == off-diagonal sum: weak dominance must hold, exactly.
        matrix = SparseMatrix(2, {(0, 0): 2.0, (0, 1): -2.0, (1, 1): 1.0})
        assert matrix.is_diagonally_dominant()


class TestOrderingDeterminism:
    def test_markowitz_stable_across_construction_orders(self, rng):
        matrix = random_dd_matrix(20, 90, rng)
        reference = markowitz_ordering(matrix).row.order
        for copy in _shuffled_copies(matrix, rng):
            assert markowitz_ordering(copy).row.order == reference

    def test_markowitz_stable_across_repeated_calls(self, rng):
        matrix = random_dd_matrix(20, 90, rng)
        first = markowitz_ordering(matrix)
        assert all(markowitz_ordering(matrix) == first for _ in range(3))

    def test_markowitz_matches_pattern_input(self, rng):
        matrix = random_dd_matrix(16, 70, rng)
        assert markowitz_ordering(matrix) == markowitz_ordering(matrix.pattern())

    def test_minimum_degree_stable_across_construction_orders(self, rng):
        base = random_dd_matrix(14, 50, rng)
        symmetric = base.add(base.transpose())
        reference = minimum_degree_ordering(symmetric).row.order
        for copy in _shuffled_copies(symmetric, rng):
            assert minimum_degree_ordering(copy).row.order == reference


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
