"""The resolution-ladder refactor's contract, pinned four ways.

1. **Differential golden**: the refactored planner reproduces, bit for bit,
   the answers / stats / audit records / cache counters the pre-refactor
   monolithic planner produced on a fixed all-measure workload exercising
   every tier (``tests/ladder_workload.py``; golden captured from the
   monolith before the split and committed as
   ``tests/data/ladder_golden.json``).
2. **Tier semantics**: each tier serves in isolation and is counted under
   its own name in ``PlannerStats.resolutions``; the ladder's precedence
   order, the legacy derived counters, custom ladders, and the
   ``ServerStats`` passthrough.
3. **Localized SALSA deltas**: property test that the column-restricted
   provider equals the full composed-matrix diff *exactly* on random
   digraph evolutions, plus the provider-registry dispatch surface.
4. **Layering**: the split modules import standalone, without cycles, and
   every historical import path still resolves to the same objects.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasureError
from repro.graphs.matrixkind import (
    MatrixKind,
    delta_provider,
    measure_matrix,
    register_delta_provider,
    registered_delta_kinds,
    system_delta,
)
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import CorrectedPolicy, QCPolicy
from repro.query import QueryPlanner
from repro.query.cache import FactorCache
from repro.query.resolution import (
    ColdTier,
    CorrectedReuseTier,
    HitTier,
    RefreshTier,
    ResolutionLadder,
    StoreRestoreTier,
    VerbatimReuseTier,
    default_stages,
)
from repro.serve import StatsCollector

from ladder_workload import GOLDEN_RELPATH, all_measure_batch, run_workload, workload_snapshots

TIER_NAMES = (
    "hit", "store_restore", "verbatim_reuse", "corrected_reuse", "refresh", "cold",
)


@pytest.fixture()
def snap0():
    """First snapshot of the fixed workload chain (large enough for every
    measure in ``all_measure_batch``)."""
    return workload_snapshots()[0]


# ---------------------------------------------------------------------- #
# 1. Differential golden: refactored == pre-refactor, bitwise
# ---------------------------------------------------------------------- #
class TestDifferentialGolden:
    def test_workload_matches_pre_refactor_golden(self, tmp_path):
        """Every tier scenario, every measure: answers, stats, audit records
        and cache counters are byte-identical to the monolithic planner's."""
        golden_path = Path(__file__).parent / GOLDEN_RELPATH
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        fresh = json.loads(json.dumps(run_workload(str(tmp_path / "store"))))
        assert set(fresh) == set(golden)
        for scenario in golden:
            assert fresh[scenario] == golden[scenario], scenario

    def test_golden_covers_every_tier(self):
        """The committed golden actually exercised all six tiers."""
        golden_path = Path(__file__).parent / GOLDEN_RELPATH
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        assert golden["cold"]["stats"]["factorizations"] > 0
        assert golden["hit"]["stats"]["cache_hits"] > 0
        assert golden["result_hit"]["stats"]["result_hits"] > 0
        assert golden["verbatim_reuse"]["stats"]["qc_reuses"] > 0
        assert golden["corrected_reuse"]["stats"]["corrected_reuses"] > 0
        assert golden["refresh"]["stats"]["refreshes"] > 0
        assert golden["store_cache_info"]["store_hits"] > 0


# ---------------------------------------------------------------------- #
# 2. Tier semantics: isolation, precedence, counters
# ---------------------------------------------------------------------- #
class TestTierCounting:
    def test_default_ladder_order(self):
        planner = QueryPlanner()
        assert planner.ladder.tier_names() == TIER_NAMES
        # Hit and store-restore share one fused stage (a store restore must
        # interleave with neighbouring groups' memory lookups exactly as the
        # monolith's single cache.lookup did); every other stage is solo.
        assert tuple(len(stage) for stage in planner.ladder.stages) == (2, 1, 1, 1, 1)

    def test_resolutions_mapping_is_shape_stable(self, snap0):
        """Every tier name appears in every batch's mapping, zeros included."""
        planner = QueryPlanner()
        stats = planner.run(all_measure_batch(snap0)).stats
        assert tuple(stats.resolutions) == TIER_NAMES
        assert stats.resolutions["cold"] == stats.groups
        assert sum(stats.resolutions.values()) == stats.groups

    def test_cold_then_hit(self, snap0):
        planner = QueryPlanner(result_cache=0)
        first = planner.run(all_measure_batch(snap0)).stats
        again = planner.run(all_measure_batch(snap0)).stats
        assert first.resolutions["cold"] == first.groups
        assert again.resolutions["hit"] == again.groups
        assert again.resolutions["cold"] == 0
        # Legacy derived counters read the mapping.
        assert again.cache_hits == again.groups
        assert again.factorizations == 0

    def test_store_restore_counts_under_its_own_name(self, snap0, tmp_path):
        from repro.store import FactorStore

        store = FactorStore(str(tmp_path / "factors"))
        writer = QueryPlanner(store=store)
        writer.run(all_measure_batch(snap0))
        writer.cache.checkpoint()
        warm = QueryPlanner(cache=FactorCache(store=store))
        stats = warm.run(all_measure_batch(snap0)).stats
        assert stats.resolutions["store_restore"] == stats.groups
        assert stats.resolutions["hit"] == 0
        assert stats.resolutions["cold"] == 0
        # Historically a disk restore reported as a cache hit; the derived
        # property keeps that view.
        assert stats.cache_hits == stats.groups

    def test_verbatim_reuse_counts(self):
        snaps = workload_snapshots()
        planner = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
        planner.run(all_measure_batch(snaps[0]))
        stats = planner.run(all_measure_batch(snaps[1])).stats
        assert stats.resolutions["verbatim_reuse"] > 0
        assert stats.qc_reuses == stats.resolutions["verbatim_reuse"]

    def test_corrected_reuse_counts(self):
        snaps = workload_snapshots()
        planner = QueryPlanner(
            policy=CorrectedPolicy(alpha=0.0, loss_bound=1e-3, max_rank=8)
        )
        planner.run(all_measure_batch(snaps[0]))
        stats = planner.run(all_measure_batch(snaps[1])).stats
        assert stats.resolutions["corrected_reuse"] > 0
        assert stats.corrected_reuses == stats.resolutions["corrected_reuse"]

    def test_refresh_counts(self):
        snaps = workload_snapshots()
        planner = QueryPlanner()
        planner.run(all_measure_batch(snaps[0]))
        planner.register_evolution(snaps[0], snaps[1])
        stats = planner.run(all_measure_batch(snaps[1])).stats
        assert stats.resolutions["refresh"] > 0
        assert stats.refreshes == stats.resolutions["refresh"]

    def test_custom_ladder_skips_omitted_tiers(self, snap0):
        """A hit+cold ladder never consults policy/refresh machinery, and its
        stats mapping carries exactly its own tier names."""
        ladder = ResolutionLadder(stages=(HitTier(), ColdTier()))
        planner = QueryPlanner(ladder=ladder, result_cache=0)
        assert planner.ladder.tier_names() == ("hit", "cold")
        first = planner.run(all_measure_batch(snap0)).stats
        again = planner.run(all_measure_batch(snap0)).stats
        assert tuple(first.resolutions) == ("hit", "cold")
        assert first.resolutions["cold"] == first.groups
        assert again.resolutions["hit"] == again.groups

    def test_ladder_rejects_degenerate_shapes(self):
        with pytest.raises(MeasureError):
            ResolutionLadder(stages=())
        with pytest.raises(MeasureError):
            ResolutionLadder(stages=(HitTier(), HitTier(), ColdTier()))

    def test_default_stages_fuses_hit_and_store_restore(self):
        stages = default_stages()
        assert isinstance(stages[0][0], HitTier)
        assert isinstance(stages[0][1], StoreRestoreTier)
        kinds = tuple(type(stage[0]) for stage in stages[1:])
        assert kinds == (VerbatimReuseTier, CorrectedReuseTier, RefreshTier, ColdTier)


class TestServerResolutions:
    def test_stats_collector_accumulates_per_tier(self):
        collector = StatsCollector()
        collector.record_batch((), (), {"hit": 2, "cold": 1})
        collector.record_batch((), (), {"hit": 1, "refresh": 3})
        snapshot = collector.snapshot()
        assert snapshot.resolutions == {"hit": 3, "cold": 1, "refresh": 3}

    def test_server_surfaces_lifetime_resolutions(self, tiny_graph):
        from repro.serve import MeasureServer

        server = MeasureServer()
        try:
            server.submit_measure("pagerank", tiny_graph).result(timeout=30)
            server.submit_measure("pagerank", tiny_graph).result(timeout=30)
            stats = server.stats()
        finally:
            server.close()
        assert stats.resolutions.get("cold", 0) >= 1
        total = stats.resolutions.get("cold", 0) + stats.resolutions.get("hit", 0)
        assert total >= 1
        # The mapping coexists with the historical counter surfaces.
        assert "result_hits" in stats.planner_cache_info


class TestCounterSurfaces:
    """The exact cache_info shapes are API: store counters only with a store."""

    STORELESS_KEYS = (
        "hits", "misses", "evictions", "refreshes", "refresh_fallbacks", "size",
    )
    STORE_KEYS = STORELESS_KEYS + (
        "store_hits", "store_misses", "spills", "restore_fallbacks",
    )

    def test_storeless_factor_cache_shape(self):
        assert tuple(FactorCache().cache_info()) == self.STORELESS_KEYS

    def test_store_backed_factor_cache_shape(self, tmp_path):
        from repro.store import FactorStore

        cache = FactorCache(store=FactorStore(str(tmp_path / "factors")))
        assert tuple(cache.cache_info()) == self.STORE_KEYS

    def test_planner_cache_info_merges_result_counters(self, snap0):
        planner = QueryPlanner()
        planner.run(all_measure_batch(snap0))
        info = planner.cache_info()
        for key in self.STORELESS_KEYS:
            assert key in info
        for key in ("result_hits", "result_misses", "result_evictions",
                    "result_invalidations", "result_size"):
            assert key in info
        disabled = QueryPlanner(result_cache=0).cache_info()
        assert disabled["result_hits"] == 0
        assert disabled["result_size"] == 0


# ---------------------------------------------------------------------- #
# 3. Localized SALSA deltas == full composed-matrix diff, exactly
# ---------------------------------------------------------------------- #
def _edges(n, seed_edges):
    """Normalize a raw hypothesis edge draw into a valid directed edge set."""
    return {(u % n, v % n) for u, v in seed_edges if u % n != v % n}


@st.composite
def digraph_evolutions(draw):
    """Two same-``n`` directed snapshots differing in a handful of edges."""
    n = draw(st.integers(min_value=4, max_value=12))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    before = _edges(n, draw(st.sets(pairs, min_size=2, max_size=3 * n)))
    added = _edges(n, draw(st.sets(pairs, min_size=0, max_size=4))) - before
    removed = set(draw(st.permutations(sorted(before)))[: draw(
        st.integers(min_value=0, max_value=min(3, len(before)))
    )])
    after = (before - removed) | added
    # Degenerate graphs (no edges) can't be normalized; keep both sides live.
    if not before or not after:
        before = before or {(0, 1)}
        after = after or {(1, 2)}
    return (
        GraphSnapshot(n, sorted(before), directed=True),
        GraphSnapshot(n, sorted(after), directed=True),
    )


class TestLocalizedSalsaDelta:
    @settings(max_examples=60, deadline=None)
    @given(evolution=digraph_evolutions(), damping=st.sampled_from([0.3, 0.85]),
           kind=st.sampled_from([MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB]))
    def test_localized_equals_full_diff_bitwise(self, evolution, damping, kind):
        before, after = evolution
        localized = system_delta(before, after, kind, damping)
        full = measure_matrix(before, kind, damping).delta_entries(
            measure_matrix(after, kind, damping)
        )
        assert set(localized) == set(full)
        for position, value in full.items():
            assert localized[position].hex() == value.hex(), position

    def test_empty_delta_short_circuits(self, tiny_graph):
        assert system_delta(tiny_graph, tiny_graph, MatrixKind.SALSA_AUTHORITY) == {}

    def test_registry_covers_all_refreshable_kinds(self):
        kinds = registered_delta_kinds()
        for kind in (MatrixKind.RANDOM_WALK, MatrixKind.SYMMETRIC_WALK,
                     MatrixKind.LAPLACIAN, MatrixKind.SALSA_AUTHORITY,
                     MatrixKind.SALSA_HUB):
            assert kind in kinds
            assert callable(delta_provider(kind))

    def test_register_rejects_non_kind(self):
        with pytest.raises(MeasureError):
            register_delta_provider("random_walk", lambda *a: {})

    def test_custom_provider_round_trip(self):
        """Registering a replacement provider reroutes system_delta dispatch."""
        kind = MatrixKind.RANDOM_WALK
        original = delta_provider(kind)
        sentinel = {(0, 0): 42.0}
        try:
            register_delta_provider(kind, lambda *args: dict(sentinel))
            before = GraphSnapshot(3, [(0, 1)], directed=True)
            after = GraphSnapshot(3, [(0, 2)], directed=True)
            assert system_delta(before, after, kind, 0.5) == sentinel
        finally:
            register_delta_provider(kind, original)


# ---------------------------------------------------------------------- #
# 4. Layering: standalone imports, no cycles, historical paths
# ---------------------------------------------------------------------- #
class TestLayering:
    @pytest.mark.parametrize("module", [
        "repro.query.cache",
        "repro.query.resolution",
        "repro.query.planner",
        "repro.query",
        "repro",
    ])
    def test_module_imports_standalone(self, module):
        """Each split module loads in a fresh interpreter (no import cycle)."""
        subprocess.run(
            [sys.executable, "-c", f"import {module}"],
            check=True, capture_output=True, timeout=120,
        )

    @staticmethod
    def _imported_modules(relpath):
        """Runtime imports of a module: everything except TYPE_CHECKING blocks."""
        import ast

        source = (Path(__file__).parents[1] / relpath).read_text(encoding="utf-8")
        modules = set()

        def visit(node):
            for child in ast.iter_child_nodes(node):
                if (
                    isinstance(child, ast.If)
                    and isinstance(child.test, ast.Name)
                    and child.test.id == "TYPE_CHECKING"
                ):
                    continue
                if isinstance(child, ast.Import):
                    modules.update(alias.name for alias in child.names)
                elif isinstance(child, ast.ImportFrom) and child.module:
                    modules.add(child.module)
                visit(child)

        visit(ast.parse(source))
        return modules

    def test_layering_is_acyclic(self):
        """cache.py is the bottom layer, resolution.py sits on it, planner.py
        on both — never the reverse at runtime (TYPE_CHECKING-only hints are
        exempt: they never execute)."""
        cache_imports = self._imported_modules("src/repro/query/cache.py")
        assert "repro.query.resolution" not in cache_imports
        assert "repro.query.planner" not in cache_imports
        resolution_imports = self._imported_modules("src/repro/query/resolution.py")
        assert "repro.query.planner" not in resolution_imports
        assert "repro.query.cache" in resolution_imports

    def test_historical_import_paths_still_resolve(self):
        """Every pre-split spelling keeps working and names the same object."""
        import repro
        import repro.query
        import repro.query.cache as cache_mod
        import repro.query.planner as planner_mod
        import repro.query.resolution as resolution_mod

        for name in ("ApproximationRecord", "BatchResult", "DirectAnswer",
                     "FactorCache", "PlannedGroup", "PlannerStats", "QueryPlan",
                     "QueryPlanner", "ResultCache"):
            assert hasattr(planner_mod, name), name
            assert getattr(repro.query, name) is getattr(planner_mod, name), name
        # The moved classes are the same objects under old and new homes.
        assert planner_mod.FactorCache is cache_mod.FactorCache
        assert planner_mod.ResultCache is cache_mod.ResultCache
        assert planner_mod.ApproximationRecord is resolution_mod.ApproximationRecord
        assert planner_mod.DEFAULT_REFRESH_THRESHOLD == cache_mod.DEFAULT_REFRESH_THRESHOLD
        assert planner_mod.DEFAULT_RESULT_CACHE_SIZE == cache_mod.DEFAULT_RESULT_CACHE_SIZE
        # Top-level package surface.
        for name in ("FactorCache", "ResultCache", "ApproximationRecord",
                     "QueryPlanner", "ResolutionLadder", "ResolutionTier",
                     "system_delta", "register_delta_provider",
                     "delta_provider", "registered_delta_kinds"):
            assert hasattr(repro, name), name
