"""Tests for the dynamic and static LU factor containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, PatternError
from repro.lu.crout import crout_decompose
from repro.lu.factors import LUFactors
from repro.lu.static_structure import StaticLUFactors
from repro.sparse.pattern import SparsityPattern
from tests.conftest import random_dd_matrix


class TestLUFactors:
    def test_set_get_lower_and_upper(self):
        factors = LUFactors(4)
        factors.set_l_diagonal(0, 2.0)
        factors.l_set(2, 1, -1.5)
        factors.u_set(1, 3, 0.25)
        assert factors.l_diagonal(0) == 2.0
        assert factors.l_get(2, 1) == -1.5
        assert factors.u_get(1, 3) == 0.25
        assert factors.u_get(2, 2) == 1.0          # implicit unit diagonal
        assert factors.l_get(1, 2) == 0.0          # above diagonal
        assert factors.u_get(3, 1) == 0.0          # below diagonal

    def test_triangular_constraints(self):
        factors = LUFactors(3)
        with pytest.raises(DimensionError):
            factors.l_set(0, 1, 1.0)
        with pytest.raises(DimensionError):
            factors.u_set(1, 1, 1.0)

    def test_column_and_row_entry_views(self):
        factors = LUFactors(4)
        factors.l_set(2, 0, 5.0)
        factors.l_set(3, 0, 6.0)
        factors.u_set(0, 2, 0.5)
        assert sorted(factors.l_column_entries(0)) == [(2, 5.0), (3, 6.0)]
        assert factors.u_row_entries(0) == [(2, 0.5)]

    def test_fill_size_and_pattern(self):
        factors = LUFactors(3)
        factors.set_l_diagonal(0, 1.0)
        factors.l_set(2, 0, 5.0)
        factors.u_set(0, 1, 2.0)
        assert factors.fill_size == 3
        assert factors.decomposed_pattern().indices == frozenset({(0, 0), (2, 0), (0, 1)})

    def test_copy_independence(self, rng):
        matrix = random_dd_matrix(8, 25, rng)
        factors = crout_decompose(matrix)
        clone = factors.copy()
        clone.set_l_diagonal(0, 99.0)
        assert factors.l_diagonal(0) != 99.0

    def test_structural_ops_increase_on_inserts(self):
        factors = LUFactors(4)
        factors.l_set(1, 0, 1.0)
        factors.u_set(0, 2, 1.0)
        assert factors.structural_ops == 2
        factors.reset_counters()
        assert factors.structural_ops == 0

    def test_reconstruct(self, rng):
        matrix = random_dd_matrix(9, 30, rng)
        factors = crout_decompose(matrix)
        assert factors.reconstruct().allclose(matrix)


class TestStaticLUFactors:
    def make_static(self):
        pattern = SparsityPattern(4, [(1, 0), (2, 0), (3, 2), (0, 1), (0, 3), (1, 3)])
        return StaticLUFactors(pattern)

    def test_capacity_and_initial_state(self):
        static = self.make_static()
        assert static.capacity == 4 + 6
        assert static.fill_size == 0
        assert static.structural_ops == 0

    def test_set_get_within_pattern(self):
        static = self.make_static()
        static.set_l_diagonal(2, 4.0)
        static.l_set(1, 0, -1.0)
        static.u_set(0, 3, 0.5)
        assert static.l_diagonal(2) == 4.0
        assert static.l_get(1, 0) == -1.0
        assert static.u_get(0, 3) == 0.5
        assert static.u_get(1, 1) == 1.0

    def test_writes_outside_pattern_rejected(self):
        static = self.make_static()
        with pytest.raises(PatternError):
            static.l_set(3, 1, 1.0)
        with pytest.raises(PatternError):
            static.u_set(2, 3, 1.0)

    def test_triangular_constraints(self):
        static = self.make_static()
        with pytest.raises(DimensionError):
            static.l_set(0, 1, 1.0)
        with pytest.raises(DimensionError):
            static.u_set(2, 2, 1.0)

    def test_reads_outside_pattern_are_zero(self):
        static = self.make_static()
        assert static.l_get(3, 1) == 0.0
        assert static.u_get(2, 3) == 0.0

    def test_diagonal_always_admissible(self):
        pattern = SparsityPattern(3, [(0, 1)])
        static = StaticLUFactors(pattern)
        static.set_l_diagonal(2, 7.0)
        assert static.l_diagonal(2) == 7.0

    def test_reset_values_keeps_structure(self):
        static = self.make_static()
        static.l_set(1, 0, 3.0)
        static.set_l_diagonal(0, 2.0)
        static.reset_values()
        assert static.fill_size == 0
        assert static.capacity == 10
        static.l_set(1, 0, 1.0)      # still admissible after reset

    def test_entry_views_expose_all_slots(self):
        static = self.make_static()
        assert sorted(index for index, _ in static.l_column_entries(0)) == [1, 2]
        assert sorted(index for index, _ in static.u_row_entries(0)) == [1, 3]

    def test_dense_export_and_items(self):
        static = self.make_static()
        static.set_l_diagonal(0, 2.0)
        static.l_set(2, 0, 1.0)
        static.u_set(0, 1, 0.5)
        l_dense = static.l_dense()
        u_dense = static.u_dense()
        assert l_dense[0, 0] == 2.0 and l_dense[2, 0] == 1.0
        assert u_dense[0, 1] == 0.5 and np.allclose(np.diag(u_dense), 1.0)
        assert set(static.decomposed_pattern().indices) == {(0, 0), (2, 0), (0, 1)}
