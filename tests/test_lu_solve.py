"""Tests for triangular solves, the full solve path, GE baseline and validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, SingularMatrixError
from repro.lu.crout import crout_decompose
from repro.lu.gauss import gaussian_elimination_solve
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import (
    backward_substitution,
    forward_substitution,
    solve_factored,
    solve_reordered_system,
)
from repro.lu.validate import factors_are_valid, reconstruction_error, solve_residual
from repro.sparse.csr import SparseMatrix
from tests.conftest import random_dd_matrix


class TestTriangularSolves:
    def test_forward_substitution_matches_numpy(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        factors = crout_decompose(matrix)
        b = rng.random(12)
        y = forward_substitution(factors, b)
        assert np.allclose(factors.l_dense() @ y, b)

    def test_backward_substitution_matches_numpy(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        factors = crout_decompose(matrix)
        y = rng.random(12)
        x = backward_substitution(factors, y)
        assert np.allclose(factors.u_dense() @ x, y)

    def test_solve_factored(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        factors = crout_decompose(matrix)
        b = rng.random(12)
        x = solve_factored(factors, b)
        assert np.allclose(matrix.matvec(x), b, atol=1e-9)

    def test_wrong_rhs_length(self, rng):
        factors = crout_decompose(random_dd_matrix(5, 12, rng))
        with pytest.raises(DimensionError):
            forward_substitution(factors, [1.0, 2.0])
        with pytest.raises(DimensionError):
            backward_substitution(factors, [1.0, 2.0])

    def test_zero_pivot_detected(self):
        from repro.lu.factors import LUFactors

        factors = LUFactors(2)
        factors.set_l_diagonal(0, 1.0)   # pivot 1 missing (zero)
        with pytest.raises(SingularMatrixError):
            forward_substitution(factors, [1.0, 1.0])


class TestReorderedSolve:
    def test_solution_in_original_coordinates(self, rng):
        matrix = random_dd_matrix(15, 55, rng)
        ordering = markowitz_ordering(matrix)
        factors = crout_decompose(ordering.apply(matrix))
        x_true = rng.random(15)
        b = matrix.matvec(x_true)
        x = solve_reordered_system(factors, ordering, b)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_identity_ordering_allowed_as_none(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        b = rng.random(10)
        assert np.allclose(
            solve_reordered_system(factors, None, b), solve_factored(factors, b)
        )


class TestGaussianElimination:
    def test_matches_numpy_solve(self, rng):
        matrix = random_dd_matrix(12, 45, rng)
        b = rng.random(12)
        x = gaussian_elimination_solve(matrix, b)
        assert np.allclose(x, np.linalg.solve(matrix.to_dense(), b), atol=1e-9)

    def test_rejects_singular(self):
        singular = SparseMatrix(2, {(0, 0): 1.0})
        with pytest.raises(SingularMatrixError):
            gaussian_elimination_solve(singular, [1.0, 1.0])

    def test_rejects_bad_rhs(self, rng):
        with pytest.raises(DimensionError):
            gaussian_elimination_solve(random_dd_matrix(4, 8, rng), [1.0])

    def test_agrees_with_lu_path(self, rng):
        matrix = random_dd_matrix(10, 35, rng)
        ordering = markowitz_ordering(matrix)
        factors = crout_decompose(ordering.apply(matrix))
        b = rng.random(10)
        assert np.allclose(
            gaussian_elimination_solve(matrix, b),
            solve_reordered_system(factors, ordering, b),
            atol=1e-8,
        )


class TestValidationHelpers:
    def test_reconstruction_error_near_zero_for_valid_factors(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        ordering = markowitz_ordering(matrix)
        factors = crout_decompose(ordering.apply(matrix))
        assert reconstruction_error(factors, matrix, ordering) < 1e-10
        assert factors_are_valid(factors, matrix, ordering)

    def test_invalid_factors_detected(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        factors.set_l_diagonal(0, factors.l_diagonal(0) + 1.0)
        assert not factors_are_valid(factors, matrix)

    def test_solve_residual(self, rng):
        matrix = random_dd_matrix(8, 24, rng)
        x = rng.random(8)
        b = matrix.matvec(x)
        assert solve_residual(matrix, x, b) < 1e-12
        assert solve_residual(matrix, x + 0.1, b) > 0.0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_solve_round_trip_property(seed):
    """Property: solving A x = A x0 recovers x0 through the reordered LU path."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 14))
    matrix = random_dd_matrix(n, int(rng.integers(2 * n, 5 * n)), rng)
    ordering = markowitz_ordering(matrix)
    factors = crout_decompose(ordering.apply(matrix))
    x_true = rng.random(n)
    x = solve_reordered_system(factors, ordering, matrix.matvec(x_true))
    assert np.allclose(x, x_true, atol=1e-7)
