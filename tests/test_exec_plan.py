"""Unit tests for the execution-plan and executor layer (repro.exec)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.clustering import alpha_clustering
from repro.core.result import MatrixDecomposition
from repro.errors import EmptySequenceError, MeasureError
from repro.exec.executors import (
    ParallelExecutor,
    SerialExecutor,
    merge_unit_results,
    reduce_timings,
    resolve_executor,
)
from repro.exec.plan import ExecutionPlan, WorkUnit, plan_bf, plan_clustered, plan_inc
from repro.exec.units import UnitResult, execute_unit
from repro.sparse.permutation import Ordering


class TestPlanBuilders:
    def test_bf_plan_has_one_unit_per_snapshot(self, tiny_ems):
        matrices = list(tiny_ems)
        plan = plan_bf(matrices)
        assert plan.algorithm == "BF"
        assert len(plan) == len(matrices)
        for index, unit in enumerate(plan.units):
            assert unit.unit_id == index
            assert unit.start == index
            assert unit.size == 1
            assert unit.cluster_id == index
            assert unit.members[0] is matrices[index]

    def test_inc_plan_is_a_single_chain(self, tiny_ems):
        matrices = list(tiny_ems)
        plan = plan_inc(matrices)
        assert len(plan) == 1
        unit = plan.units[0]
        assert unit.algorithm == "INC"
        assert unit.start == 0
        assert unit.size == len(matrices)
        assert unit.cluster_id == -1

    def test_clustered_plan_mirrors_the_clustering(self, tiny_ems):
        matrices = list(tiny_ems)
        clusters = alpha_clustering(matrices, 0.9)
        plan = plan_clustered("CLUDE", matrices, clusters, options={"share_factors": False})
        assert len(plan) == len(clusters)
        for cluster_id, (cluster, unit) in enumerate(zip(clusters, plan.units)):
            assert unit.start == cluster.start
            assert unit.stop == cluster.stop
            assert unit.cluster_id == cluster_id
            assert unit.option_dict == {"share_factors": False}
            assert list(unit.members) == [matrices[i] for i in cluster.indices]

    def test_clustered_plan_rejects_unknown_algorithm(self, tiny_ems):
        matrices = list(tiny_ems)
        clusters = alpha_clustering(matrices, 0.9)
        with pytest.raises(MeasureError):
            plan_clustered("BF", matrices, clusters)

    def test_empty_sequences_are_rejected(self):
        with pytest.raises(EmptySequenceError):
            plan_bf([])
        with pytest.raises(EmptySequenceError):
            plan_inc([])

    def test_plan_validation_rejects_gaps_and_bad_ids(self, small_dd_matrix):
        unit0 = WorkUnit(0, "BF", 0, (small_dd_matrix,), 0)
        gap = WorkUnit(1, "BF", 2, (small_dd_matrix,), 1)
        with pytest.raises(MeasureError):
            ExecutionPlan(algorithm="BF", sequence_length=3, units=(unit0, gap))
        misnumbered = WorkUnit(5, "BF", 1, (small_dd_matrix,), 1)
        with pytest.raises(MeasureError):
            ExecutionPlan(algorithm="BF", sequence_length=2, units=(unit0, misnumbered))
        with pytest.raises(MeasureError):
            ExecutionPlan(algorithm="BF", sequence_length=7, units=(unit0,))

    def test_work_unit_rejects_bad_inputs(self, small_dd_matrix):
        with pytest.raises(MeasureError):
            WorkUnit(0, "NOPE", 0, (small_dd_matrix,), 0)
        with pytest.raises(EmptySequenceError):
            WorkUnit(0, "BF", 0, (), 0)
        with pytest.raises(MeasureError):
            WorkUnit(0, "BF", -1, (small_dd_matrix,), 0)

    def test_work_unit_pickles(self, small_dd_matrix):
        unit = WorkUnit(0, "CLUDE", 0, (small_dd_matrix,), 0, (("share_factors", False),))
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.unit_id == unit.unit_id
        assert clone.option_dict == {"share_factors": False}
        assert list(clone.members[0].items()) == list(small_dd_matrix.items())


class TestReduction:
    def test_reduce_timings_sums_buckets_in_order(self):
        merged = reduce_timings(
            [{"ordering": 1.0, "bennett": 0.5}, {"ordering": 2.0, "clustering": 0.25}]
        )
        assert merged == {"bennett": 0.5, "clustering": 0.25, "ordering": 3.0}
        assert list(merged) == sorted(merged)

    def test_merge_reorders_shuffled_unit_results(self, tiny_ems):
        matrices = list(tiny_ems)
        plan = plan_bf(matrices)
        results = [execute_unit(unit) for unit in plan.units]
        shuffled = list(reversed(results))
        outcome = merge_unit_results(plan, shuffled, wall_time=0.5)
        assert [d.index for d in outcome.decompositions] == list(range(len(matrices)))
        assert outcome.wall_time == 0.5
        assert outcome.unit_count == len(matrices)

    def test_merge_detects_missing_and_duplicate_units(self, tiny_ems):
        matrices = list(tiny_ems)
        plan = plan_bf(matrices)
        results = [execute_unit(unit) for unit in plan.units]
        with pytest.raises(MeasureError):
            merge_unit_results(plan, results[:-1], wall_time=0.0)
        with pytest.raises(MeasureError):
            merge_unit_results(plan, results + [results[0]], wall_time=0.0)


class TestExecutors:
    def test_resolve_executor_conventions(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(0), SerialExecutor)
        parallel = resolve_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        serial = SerialExecutor()
        assert resolve_executor(serial) is serial
        with pytest.raises(MeasureError):
            resolve_executor("four")

    def test_parallel_executor_needs_a_positive_worker_count(self):
        with pytest.raises(MeasureError):
            ParallelExecutor(workers=0)
        assert ParallelExecutor().workers >= 1

    def test_serial_executor_produces_canonical_order(self, tiny_ems):
        matrices = list(tiny_ems)
        plan = plan_bf(matrices)
        outcome = SerialExecutor().execute(plan)
        assert [d.index for d in outcome.decompositions] == list(range(len(matrices)))
        assert outcome.wall_time > 0.0
        assert set(outcome.timings) == {"ordering", "decomposition"}

    def test_execute_unit_returns_timed_result(self, tiny_ems):
        matrices = list(tiny_ems)
        unit = plan_bf(matrices).units[0]
        result = execute_unit(unit)
        assert isinstance(result, UnitResult)
        assert result.unit_id == 0
        assert len(result.decompositions) == 1
        decomposition = result.decompositions[0]
        assert isinstance(decomposition, MatrixDecomposition)
        assert isinstance(decomposition.ordering, Ordering)
        assert result.timings["ordering"] >= 0.0


class TestFactorUnits:
    """FACTOR units: the planner's cold-start fan-out, report-don't-raise.

    Regression: a raised exception inside a factor work unit aborted the
    whole parallel batch with a bare worker traceback.  Failures are now
    reported on the decomposition (``factors=None`` + an ``error`` naming
    the ``unit_id`` and the unit's label), matching REFRESH units, so one
    poisoned system cannot sink its batch siblings undiagnosably.
    """

    def _singular(self, n=3):
        from repro.sparse.csr import SparseMatrix

        return SparseMatrix(n, {(0, 0): 1.0, (1, 1): 1.0})  # zero (2,2) pivot

    def test_plan_builds_one_labelled_unit_per_matrix(self, tiny_ems):
        from repro.exec.plan import plan_factor_batch

        matrices = list(tiny_ems)[:2]
        plan = plan_factor_batch(matrices, labels=["first", "second"])
        assert plan.algorithm == "FACTOR"
        assert len(plan) == 2
        assert [unit.option_dict.get("label") for unit in plan.units] == [
            "first", "second",
        ]
        for unit in plan.units:
            assert unit.algorithm == "FACTOR"
            assert len(unit.members) == 1

    def test_plan_validation(self, tiny_ems):
        from repro.exec.plan import plan_factor_batch

        with pytest.raises(EmptySequenceError):
            plan_factor_batch([])
        with pytest.raises(MeasureError):
            plan_factor_batch(list(tiny_ems)[:2], labels=["only one"])

    def test_factor_unit_matches_bf_body_bitwise(self, tiny_ems):
        from repro.exec.plan import plan_factor_batch

        matrices = list(tiny_ems)
        factor = SerialExecutor().execute(plan_factor_batch(matrices))
        reference = SerialExecutor().execute(plan_bf(matrices))
        for mine, bf in zip(factor.decompositions, reference.decompositions):
            assert mine.error is None
            assert mine.ordering == bf.ordering
            assert mine.fill_size == bf.fill_size
            for row in range(mine.factors.n):
                assert mine.factors.l_column_entries(row) == \
                    bf.factors.l_column_entries(row)
                assert mine.factors.u_row_entries(row) == \
                    bf.factors.u_row_entries(row)

    def test_singular_unit_reports_instead_of_raising(self):
        from repro.exec.plan import plan_factor_batch

        plan = plan_factor_batch([self._singular()], labels=["measure='bad'"])
        result = execute_unit(plan.units[0])
        (decomposition,) = result.decompositions
        assert decomposition.factors is None
        assert decomposition.error is not None
        assert "factor unit 0" in decomposition.error
        assert "measure='bad'" in decomposition.error
        assert "Singular" in decomposition.error

    def test_poisoned_sibling_does_not_abort_the_batch(self, tiny_ems):
        from repro.exec.plan import plan_factor_batch

        healthy = list(tiny_ems)[0]
        plan = plan_factor_batch(
            [healthy, self._singular(), healthy],
            labels=["good", "bad", "good"],
        )
        for executor in (SerialExecutor(), ParallelExecutor(workers=2)):
            outcome = executor.execute(plan)
            errors = [d.error for d in outcome.decompositions]
            assert errors[0] is None and errors[2] is None
            assert "factor unit 1 [bad]" in errors[1]
            assert outcome.decompositions[0].factors is not None

    def test_factor_unit_pickles(self, tiny_ems):
        from repro.exec.plan import plan_factor_batch

        unit = plan_factor_batch(list(tiny_ems)[:1], labels=["l"]).units[0]
        clone = pickle.loads(pickle.dumps(unit))
        assert clone == unit
