"""The online serving front-end: MeasureServer and its observability.

The load-bearing contract, pinned by the differential tests at the bottom:
**micro-batching is invisible to answers**.  However the stream is cut into
admission windows (``max_batch`` 1, a few, or effectively unbounded), every
server answer is bitwise identical to a direct one-shot
:meth:`QueryPlanner.run` of the same query under an exact policy — batching
changes latency and cost, never values.

Also covered: window semantics (size flush, flush(), update-at-boundary
ordering), head-deferred queries, per-request latency accounting, the
per-query isolation fallback for poisoned batches (a singular custom system
fails only its own future, annotated with the factor unit), and the
approximation audit passthrough under a QC policy.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.errors import FactorizationError, MeasureError
from repro.graphs.matrixkind import MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import ExactPolicy, QCPolicy
from repro.query import (
    QueryBatch,
    QueryPlanner,
    evaluate,
    get_spec,
    make_query,
)
from repro.query.spec import MeasureSpec, register_spec, unregister_spec
from repro.serve import (
    LatencySummary,
    MeasureServer,
    RequestRecord,
    StatsCollector,
    percentile,
)
from repro.sparse.csr import SparseMatrix

# Generous admission window for tests that control flushing explicitly:
# long enough that a window never times out on its own, so batch shapes
# are decided by max_batch / flush() / updates alone.
LONG_WAIT_MS = 30_000.0
RESULT_TIMEOUT = 30.0


def answers(futures):
    return [future.result(timeout=RESULT_TIMEOUT) for future in futures]


# ---------------------------------------------------------------------- #
# Stats primitives
# ---------------------------------------------------------------------- #
class TestPercentile:
    def test_nearest_rank_basics(self):
        xs = list(range(1, 101))
        assert percentile(xs, 50) == 50.0
        assert percentile(xs, 99) == 99.0
        assert percentile(xs, 100) == 100.0
        assert percentile(xs, 0) == 1.0

    def test_reported_value_is_an_observed_sample(self):
        xs = [0.4, 1.9, 7.2]
        for q in (0, 10, 50, 90, 99, 100):
            assert percentile(xs, q) in xs

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_summary_of_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0
        assert math.isnan(summary.p99)


class TestStatsCollector:
    def _record(self, total=1.0, batch_size=2):
        return RequestRecord(measure="rwr", queue=0.1, solve=0.5,
                             total=total, batch_size=batch_size,
                             approximate=False)

    def test_histogram_and_latency(self):
        stats = StatsCollector()
        stats.record_batch([self._record(total=1.0), self._record(total=3.0)])
        stats.record_batch([self._record(total=2.0, batch_size=1)])
        snap = stats.snapshot({"result_hits": 3, "result_misses": 1})
        assert snap.batches == 2
        assert snap.batch_size_histogram == {2: 1, 1: 1}
        assert snap.total_latency.count == 3
        assert snap.total_latency.max == 3.0
        assert snap.hit_rate == pytest.approx(0.75)

    def test_hit_rate_nan_before_any_lookup(self):
        assert math.isnan(StatsCollector().snapshot().hit_rate)

    def test_history_bound(self):
        stats = StatsCollector(history=3)
        stats.record_batch([self._record(total=float(i)) for i in range(10)])
        kept = stats.records()
        assert len(kept) == 3
        assert [r.total for r in kept] == [7.0, 8.0, 9.0]

    def test_rejects_empty_history(self):
        with pytest.raises(ValueError):
            StatsCollector(history=0)


# ---------------------------------------------------------------------- #
# Server construction / lifecycle
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_is_idempotent(self):
        server = MeasureServer()
        server.close()
        server.close()

    def test_rejects_submissions_after_close(self, tiny_graph):
        server = MeasureServer()
        server.close()
        with pytest.raises(MeasureError):
            server.submit_measure("pagerank", tiny_graph)
        with pytest.raises(MeasureError):
            server.admit_update(tiny_graph)

    def test_close_drains_pending_work(self, tiny_graph):
        server = MeasureServer(max_batch=64, max_wait_ms=LONG_WAIT_MS)
        futures = [server.submit_measure("rwr", tiny_graph, start_node=i)
                   for i in range(5)]
        server.close(drain=True)  # no flush(): close itself must drain
        for future, expected in zip(
            futures, (evaluate(make_query("rwr", tiny_graph, start_node=i))
                      for i in range(5))
        ):
            assert future.result(timeout=0).tobytes() == expected.tobytes()

    def test_close_without_drain_resolves_everything(self, tiny_graph):
        server = MeasureServer(max_batch=2, max_wait_ms=LONG_WAIT_MS)
        futures = [server.submit_measure("rwr", tiny_graph, start_node=i % 7)
                   for i in range(20)]
        server.close(drain=False)
        done = sum(1 for f in futures if not f.cancelled())
        cancelled = sum(1 for f in futures if f.cancelled())
        assert done + cancelled == 20
        stats = server.stats()
        assert stats.answered == done
        assert stats.cancelled == cancelled

    def test_validation_errors(self, tiny_graph):
        with pytest.raises(MeasureError):
            MeasureServer(max_batch=0)
        with pytest.raises(MeasureError):
            MeasureServer(max_wait_ms=-1.0)
        with pytest.raises(MeasureError):
            MeasureServer(planner=QueryPlanner(), auto_refresh=True)
        with MeasureServer() as server:
            with pytest.raises(MeasureError):
                server.submit("not a query")
            with pytest.raises(MeasureError):
                server.submit_measure("no_such_measure", tiny_graph)
            with pytest.raises(MeasureError):
                server.submit_measure("rwr")  # missing start_node, eagerly
            with pytest.raises(MeasureError):
                server.submit_measure("pagerank", damping=1.5)

    def test_head_deferred_query_without_head_fails_its_future(self):
        with MeasureServer(max_wait_ms=0.0) as server:
            future = server.submit_measure("pagerank")
            with pytest.raises(MeasureError, match="no update has been admitted"):
                future.result(timeout=RESULT_TIMEOUT)
        assert server.stats().failed == 1


# ---------------------------------------------------------------------- #
# Admission-window semantics
# ---------------------------------------------------------------------- #
class TestAdmissionWindow:
    def test_concurrent_submissions_coalesce_into_one_batch(self, tiny_graph):
        with MeasureServer(max_batch=64, max_wait_ms=LONG_WAIT_MS) as server:
            futures = [server.submit_measure("rwr", tiny_graph, start_node=i)
                       for i in range(5)]
            server.flush()
            answers(futures)
            stats = server.stats()
        assert stats.batches == 1
        assert stats.batch_size_histogram == {5: 1}
        assert stats.answered == 5

    def test_full_window_flushes_on_max_batch(self, tiny_graph):
        with MeasureServer(max_batch=3, max_wait_ms=LONG_WAIT_MS) as server:
            futures = [server.submit_measure("rwr", tiny_graph, start_node=i % 7)
                       for i in range(7)]
            answers(futures[:6])  # two full windows complete unprompted
            server.flush()        # release the trailing partial window
            answers(futures)
            stats = server.stats()
        assert stats.batch_size_histogram == {3: 2, 1: 1}
        assert stats.answered == 7

    def test_window_times_out_after_max_wait(self, tiny_graph):
        with MeasureServer(max_batch=100, max_wait_ms=50.0) as server:
            future = server.submit_measure("pagerank", tiny_graph)
            answer = future.result(timeout=RESULT_TIMEOUT)  # no flush needed
        assert answer.tobytes() == evaluate(
            make_query("pagerank", tiny_graph)
        ).tobytes()

    def test_requests_record_latency_decomposition(self, tiny_graph):
        with MeasureServer(max_batch=4, max_wait_ms=20.0) as server:
            futures = [server.submit_measure("rwr", tiny_graph, start_node=i)
                       for i in range(4)]
            answers(futures)
            records = server.request_records()
            stats = server.stats()
        assert len(records) == 4
        for record in records:
            assert record.queue >= 0.0
            assert record.solve >= 0.0
            assert record.total + 1e-9 >= record.queue + record.solve
            assert 1 <= record.batch_size <= 4
        assert stats.total_latency.count == 4
        assert stats.total_latency.p99 >= stats.total_latency.p50 > 0.0
        assert math.isfinite(stats.total_latency.p99)

    def test_result_cache_hits_surface_in_stats(self, tiny_graph):
        with MeasureServer(max_wait_ms=0.0) as server:
            first = server.submit_measure("rwr", tiny_graph, start_node=2)
            first.result(timeout=RESULT_TIMEOUT)
            second = server.submit_measure("rwr", tiny_graph, start_node=2)
            second.result(timeout=RESULT_TIMEOUT)
            stats = server.stats()
        assert stats.planner_cache_info["result_hits"] >= 1
        assert stats.hit_rate > 0.0
        assert first.result().tobytes() == second.result().tobytes()


# ---------------------------------------------------------------------- #
# Streaming updates
# ---------------------------------------------------------------------- #
class TestStreamingUpdates:
    def test_update_applies_at_batch_boundary_in_fifo_order(self, tiny_graph):
        evolved = tiny_graph.with_edges(added=[(0, 5)])
        # register_lineage=False keeps every head cold-factorized, so the
        # which-graph-answered-what assertions below can be bitwise.
        with MeasureServer(
            max_batch=64, max_wait_ms=LONG_WAIT_MS, register_lineage=False
        ) as server:
            server.admit_update(tiny_graph)
            before = server.submit_measure("pagerank")
            update = server.admit_update(evolved)
            after = server.submit_measure("pagerank")
            server.flush()
            assert update.result(timeout=RESULT_TIMEOUT) == evolved
            # The pre-update query sees the graph it was submitted against,
            # the post-update query the new head.
            assert before.result(timeout=RESULT_TIMEOUT).tobytes() == evaluate(
                make_query("pagerank", tiny_graph)
            ).tobytes()
            assert after.result(timeout=RESULT_TIMEOUT).tobytes() == evaluate(
                make_query("pagerank", evolved)
            ).tobytes()
            assert server.head == evolved
            assert server.stats().updates_admitted == 2

    def test_update_registers_lineage_for_delta_refresh(self, tiny_graph):
        evolved = tiny_graph.with_edges(added=[(0, 5)], removed=[(1, 2)])
        with MeasureServer(max_wait_ms=0.0) as server:
            server.admit_update(tiny_graph)
            server.submit_measure("pagerank").result(timeout=RESULT_TIMEOUT)
            server.admit_update(evolved)
            refreshed = server.submit_measure("pagerank").result(
                timeout=RESULT_TIMEOUT
            )
            info = server.planner.cache_info()
        # The evolved head was served by Bennett refresh of the parent's
        # factors, not a cold factorization — numerically the same answer
        # (refresh reuses the parent's ordering, so not necessarily bitwise).
        assert info["refreshes"] == 1
        assert np.allclose(refreshed, evaluate(make_query("pagerank", evolved)))

    def test_lineage_can_be_disabled(self, tiny_graph):
        evolved = tiny_graph.with_edges(added=[(0, 5)])
        with MeasureServer(max_wait_ms=0.0, register_lineage=False) as server:
            server.admit_update(tiny_graph)
            server.submit_measure("pagerank").result(timeout=RESULT_TIMEOUT)
            server.admit_update(evolved)
            server.submit_measure("pagerank").result(timeout=RESULT_TIMEOUT)
            info = server.planner.cache_info()
        assert info["refreshes"] == 0

    def test_node_count_change_advances_head_without_lineage(self, tiny_graph):
        grown = GraphSnapshot(
            tiny_graph.n + 1,
            list(tiny_graph.edges) + [(tiny_graph.n, 0)],
            directed=True,
        )
        with MeasureServer(max_wait_ms=0.0) as server:
            server.admit_update(tiny_graph)
            server.admit_update(grown).result(timeout=RESULT_TIMEOUT)
            answer = server.submit_measure("pagerank").result(timeout=RESULT_TIMEOUT)
        assert answer.shape == (tiny_graph.n + 1,)

    def test_update_rejects_non_snapshot(self):
        with MeasureServer() as server:
            with pytest.raises(MeasureError):
                server.admit_update("not a snapshot")


# ---------------------------------------------------------------------- #
# Failure isolation: one poisoned query must not sink its batch-mates
# ---------------------------------------------------------------------- #
class TestFailureIsolation:
    @pytest.fixture()
    def singular_spec(self):
        spec = MeasureSpec(
            name="singular_system_test",
            kind=MatrixKind.RANDOM_WALK,
            build_rhs=get_spec("pagerank").build_rhs,
            # Rank-deficient on purpose: only the (0, 0) pivot exists.
            build_matrix=lambda snapshot, damping, params: SparseMatrix(
                snapshot.n, {(0, 0): 1.0}
            ),
        )
        register_spec(spec)
        yield spec
        unregister_spec(spec.name)

    def test_poisoned_query_fails_alone(self, tiny_graph, singular_spec):
        with MeasureServer(max_batch=8, max_wait_ms=LONG_WAIT_MS) as server:
            good = [server.submit_measure("rwr", tiny_graph, start_node=i)
                    for i in range(2)]
            bad = server.submit_measure("singular_system_test", tiny_graph)
            more = server.submit_measure("pagerank", tiny_graph)
            server.flush()
            # Innocent batch-mates are answered exactly despite the shared
            # batch raising on its first pass.
            for future, start in zip(good, range(2)):
                expected = evaluate(make_query("rwr", tiny_graph, start_node=start))
                assert future.result(timeout=RESULT_TIMEOUT).tobytes() == expected.tobytes()
            assert more.result(timeout=RESULT_TIMEOUT).tobytes() == evaluate(
                make_query("pagerank", tiny_graph)
            ).tobytes()
            with pytest.raises(FactorizationError) as excinfo:
                bad.result(timeout=RESULT_TIMEOUT)
            stats = server.stats()
        # The error names the failing work unit and its system group.
        message = str(excinfo.value)
        assert "factor unit" in message
        assert "singular_system_test" in message
        assert stats.batch_failures == 1
        assert stats.answered == 3
        assert stats.failed == 1

    def test_degraded_pass_still_records_latency(self, tiny_graph, singular_spec):
        with MeasureServer(max_batch=8, max_wait_ms=LONG_WAIT_MS) as server:
            good = server.submit_measure("pagerank", tiny_graph)
            bad = server.submit_measure("singular_system_test", tiny_graph)
            server.flush()
            good.result(timeout=RESULT_TIMEOUT)
            with pytest.raises(FactorizationError):
                bad.result(timeout=RESULT_TIMEOUT)
            records = server.request_records()
        assert len(records) == 1  # only the answered request is recorded
        assert records[0].measure == "pagerank"
        assert records[0].batch_size == 1  # answered by the isolation pass


# ---------------------------------------------------------------------- #
# QC policy passthrough
# ---------------------------------------------------------------------- #
class TestApproximationPassthrough:
    def test_qc_approximations_surface_in_stats(self, tiny_graph):
        evolved = tiny_graph.with_edges(added=[(0, 5)])
        policy = QCPolicy(alpha=0.0, loss_bound=1e12)
        with MeasureServer(policy=policy, max_wait_ms=0.0) as server:
            server.submit_measure("pagerank", tiny_graph).result(
                timeout=RESULT_TIMEOUT
            )
            future = server.submit_measure("pagerank", evolved)
            future.result(timeout=RESULT_TIMEOUT)
            stats = server.stats()
            records = server.request_records()
        assert stats.approximations_served == 1
        assert len(stats.recent_approximations) == 1
        record = stats.recent_approximations[0]
        assert record.policy == "qc"
        assert record.parent_system == tiny_graph
        assert record.system == evolved
        assert [r.approximate for r in records] == [False, True]


# ---------------------------------------------------------------------- #
# Differential: micro-batching is invisible to answers (satellite 5)
# ---------------------------------------------------------------------- #
class TestBatchingInvisibility:
    def _query_stream(self, tiny_graph):
        evolved = tiny_graph.with_edges(added=[(0, 5)], removed=[(1, 2)])
        queries = []
        for graph in (tiny_graph, evolved):
            queries.append(make_query("pagerank", graph))
            queries.extend(
                make_query("rwr", graph, start_node=i) for i in range(4)
            )
            queries.append(make_query("ppr", graph, seeds=(1, 3)))
            queries.append(make_query("hitting_time", graph, target=2))
        return queries

    @pytest.mark.parametrize("max_batch", [1, 3, 100])
    def test_answers_bitwise_equal_across_flush_boundaries(
        self, tiny_graph, max_batch
    ):
        queries = self._query_stream(tiny_graph)
        direct = QueryPlanner(policy=ExactPolicy()).run(QueryBatch(queries))
        with MeasureServer(
            policy=ExactPolicy(), max_batch=max_batch, max_wait_ms=LONG_WAIT_MS
        ) as server:
            futures = [server.submit(query) for query in queries]
            server.flush()
            served = answers(futures)
            stats = server.stats()
        for mine, reference in zip(served, direct.results):
            assert mine.tobytes() == reference.tobytes()
        # The partitioning actually differed per parametrization.
        if max_batch == 1:
            assert set(stats.batch_size_histogram) == {1}
        assert sum(
            size * count for size, count in stats.batch_size_histogram.items()
        ) == len(queries)

    def test_interleaved_updates_preserve_exactness(self, tiny_graph):
        # Stream queries against an evolving head through the server and
        # compare with direct one-shot execution of the resolved queries.
        chain = [tiny_graph]
        for step in range(3):
            chain.append(chain[-1].with_edges(added=[(step, (step + 4) % 7)]))
        expected = []
        with MeasureServer(
            max_batch=4, max_wait_ms=LONG_WAIT_MS, register_lineage=False
        ) as server:
            futures = []
            for graph in chain:
                server.admit_update(graph)
                for start in (0, 3):
                    futures.append(server.submit_measure("rwr", start_node=start))
                    expected.append(make_query("rwr", graph, start_node=start))
            server.flush()
            served = answers(futures)
        for mine, query in zip(served, expected):
            assert mine.tobytes() == evaluate(query).tobytes()
