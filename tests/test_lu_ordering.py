"""Tests for the Markowitz and minimum-degree ordering strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, NotSymmetricError, OrderingError
from repro.lu.markowitz import markowitz_cost_bound, markowitz_ordering
from repro.lu.mindegree import (
    minimum_degree_ordering,
    symmetric_markowitz_reference,
    symmetric_symbolic_size,
)
from repro.lu.symbolic import reorder_pattern, symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from tests.conftest import random_dd_matrix


def star_matrix(n, centre_first=True):
    """A star graph matrix; orderings should push the hub to the end."""
    entries = {}
    hub = 0 if centre_first else n - 1
    for node in range(n):
        entries[(node, node)] = 2.0
        if node != hub:
            entries[(hub, node)] = -0.1
            entries[(node, hub)] = -0.1
    return SparseMatrix(n, entries)


class TestMarkowitzOrdering:
    def test_is_a_valid_symmetric_ordering(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        ordering = markowitz_ordering(matrix)
        assert ordering.is_symmetric()
        assert sorted(ordering.row.order) == list(range(12))

    def test_star_hub_ordered_late(self):
        matrix = star_matrix(8, centre_first=True)
        ordering = markowitz_ordering(matrix)
        # The hub (node 0) has the highest Markowitz cost; it must be eliminated
        # only once enough leaves are gone (i.e. among the last two pivots).
        assert 0 in ordering.row.order[-2:]

    def test_reduces_fill_versus_natural_order(self):
        matrix = star_matrix(10, centre_first=True)
        natural_size = len(symbolic_decomposition(matrix.pattern()))
        ordering = markowitz_ordering(matrix)
        reordered = reorder_pattern(matrix.pattern(), ordering.row.order, ordering.column.order)
        ordered_size = len(symbolic_decomposition(reordered))
        assert ordered_size < natural_size

    def test_never_worse_than_random_order_on_average(self, rng):
        """Markowitz should generally beat a random ordering on fill size."""
        wins = 0
        trials = 5
        for _ in range(trials):
            matrix = random_dd_matrix(20, 90, rng)
            pattern = matrix.pattern()
            ordering = markowitz_ordering(matrix)
            markowitz_size = len(
                symbolic_decomposition(
                    reorder_pattern(pattern, ordering.row.order, ordering.column.order)
                )
            )
            random_order = list(rng.permutation(20))
            random_size = len(
                symbolic_decomposition(reorder_pattern(pattern, random_order, random_order))
            )
            if markowitz_size <= random_size:
                wins += 1
        assert wins >= trials - 1

    def test_accepts_pattern_input(self):
        pattern = SparsityPattern(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).with_full_diagonal()
        ordering = markowitz_ordering(pattern)
        assert sorted(ordering.row.order) == [0, 1, 2, 3]

    def test_empty_matrix(self):
        assert markowitz_ordering(SparseMatrix.zeros(0)).n == 0

    def test_unknown_tie_break_rejected(self, rng):
        with pytest.raises(DimensionError):
            markowitz_ordering(random_dd_matrix(5, 10, rng), tie_break="random")

    def test_cost_bound_requires_permutation(self):
        pattern = SparsityPattern(3, [(0, 1)])
        with pytest.raises(DimensionError):
            markowitz_cost_bound(pattern, [0, 0, 1])

    def test_cost_bound_zero_for_no_fill_chain(self):
        indices = {(i, i) for i in range(5)}
        for i in range(4):
            indices.add((i, i + 1))
            indices.add((i + 1, i))
        pattern = SparsityPattern(5, indices)
        assert markowitz_cost_bound(pattern) == 4


class TestMinimumDegreeOrdering:
    def symmetric_matrix(self, rng, n=14, edges=30):
        entries = {}
        for _ in range(edges):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                entries[(i, j)] = -0.2
                entries[(j, i)] = -0.2
        for i in range(n):
            entries[(i, i)] = 2.0
        return SparseMatrix(n, entries)

    def test_requires_symmetry(self, rng):
        asymmetric = SparseMatrix(3, {(0, 1): 1.0, (0, 0): 1.0, (1, 1): 1.0, (2, 2): 1.0})
        with pytest.raises(NotSymmetricError):
            minimum_degree_ordering(asymmetric)

    def test_valid_permutation(self, rng):
        matrix = self.symmetric_matrix(rng)
        ordering = minimum_degree_ordering(matrix)
        assert sorted(ordering.row.order) == list(range(matrix.n))

    def test_symbolic_size_matches_full_computation(self, rng):
        """The elimination-graph size equals |s̃p| of the explicitly reordered pattern."""
        for _ in range(4):
            matrix = self.symmetric_matrix(rng)
            ordering = minimum_degree_ordering(matrix)
            order = ordering.row.order
            fast = symmetric_symbolic_size(matrix.pattern(), order)
            reordered = reorder_pattern(matrix.pattern(), order, order)
            slow = len(symbolic_decomposition(reordered))
            assert fast == slow

    def test_symbolic_size_requires_permutation(self, rng):
        matrix = self.symmetric_matrix(rng)
        with pytest.raises(OrderingError):
            symmetric_symbolic_size(matrix.pattern(), list(range(matrix.n - 1)))

    def test_reference_size_positive(self, rng):
        matrix = self.symmetric_matrix(rng)
        assert symmetric_markowitz_reference(matrix.pattern()) >= matrix.n

    def test_star_hub_eliminated_late(self):
        matrix = star_matrix(7)
        ordering = minimum_degree_ordering(matrix)
        assert 0 in ordering.row.order[-2:]


@given(seed=st.integers(0, 5000))
@settings(max_examples=25, deadline=None)
def test_markowitz_ordering_is_always_a_permutation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 15))
    matrix = random_dd_matrix(n, int(rng.integers(n, 3 * n)), rng)
    ordering = markowitz_ordering(matrix)
    assert sorted(ordering.row.order) == list(range(n))
