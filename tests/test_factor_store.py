"""Persistent factor store: bitwise round trips, corruption, warm restart.

Contracts pinned here:

* **Bitwise round trips** — for every registered
  :class:`~repro.graphs.matrixkind.MatrixKind`, a checkpointed
  :class:`~repro.query.spec.FactorizedSystem` restores bitwise-identically:
  matrix arrays, ordering, every L/U factor entry, and every answer.  Both
  factor containers (dynamic :class:`~repro.lu.factors.LUFactors` and
  :class:`~repro.lu.static_structure.StaticLUFactors`) round-trip.
* **Corruption safety** — truncated, bit-flipped, header-torn, foreign and
  empty files are detected by the checksum/structure checks and treated as
  a store miss (``restore_fallbacks``), never decoded into a served system;
  writes are atomic (no partial file is ever visible, no temp litter).
* **Delta compression** — a refresh-produced system spills as a compact
  delta checkpoint (smaller than a full one); restoring it replays the
  recorded Bennett delta against the digest-verified parent and equals both
  the in-memory child and a full-checkpoint restore, bitwise.
* **Warm restart** — a planner or :class:`~repro.serve.server.MeasureServer`
  rebuilt over the same store directory answers its first batch
  bitwise-identically with zero cold factorizations for stored systems.
* **Counter compatibility** — a store-less ``cache_info()`` keeps its exact
  historical shape; the four store counters appear only with a store.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.errors import MeasureError, StoreFormatError
from repro.graphs.matrixkind import MatrixKind, measure_matrix, system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.query import FactorCache, QueryPlanner, make_query
from repro.query.spec import FactorizedSystem, SystemKey
from repro.serve import MeasureServer
from repro.store import FactorStore, RefreshProvenance
from repro.store.factorstore import system_key_digest
from repro.store.serialize import read_blob, write_blob

ALL_KINDS = list(MatrixKind)


def damping_for(kind: MatrixKind) -> float:
    return 0.0 if kind is MatrixKind.LAPLACIAN else 0.85


def random_graph(n: int, edges: int, seed: int) -> GraphSnapshot:
    rng = np.random.default_rng(seed)
    chosen = set()
    while len(chosen) < edges:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            chosen.add((int(u), int(v)))
    return GraphSnapshot(n, chosen)


def evolve(snapshot: GraphSnapshot, seed: int) -> GraphSnapshot:
    """A small edge perturbation of ``snapshot`` (same node count)."""
    rng = np.random.default_rng(seed)
    edges = set(snapshot.edges)
    for edge in sorted(edges)[:2]:
        edges.discard(edge)
    while True:
        u, v = rng.integers(0, snapshot.n, size=2)
        if u != v and (int(u), int(v)) not in edges:
            edges.add((int(u), int(v)))
            break
    return GraphSnapshot(snapshot.n, edges)


def factorized(snapshot: GraphSnapshot, kind: MatrixKind) -> FactorizedSystem:
    matrix = measure_matrix(snapshot, kind=kind, damping=damping_for(kind))
    return FactorizedSystem.factorize(matrix)


def assert_bitwise_equal(a: FactorizedSystem, b: FactorizedSystem) -> None:
    """Matrix, ordering, factors and answers of ``b`` match ``a`` bit for bit."""
    assert a.matrix.indptr.tobytes() == b.matrix.indptr.tobytes()
    assert a.matrix.indices.tobytes() == b.matrix.indices.tobytes()
    assert a.matrix.data.tobytes() == b.matrix.data.tobytes()
    assert (a.ordering is None) == (b.ordering is None)
    if a.ordering is not None:
        assert a.ordering.row.order == b.ordering.row.order
        assert a.ordering.column.order == b.ordering.column.order
    for items_a, items_b in (
        (list(a.factors.l_items()), list(b.factors.l_items())),
        (list(a.factors.u_items()), list(b.factors.u_items())),
    ):
        assert [(i, j) for i, j, _ in items_a] == [(i, j) for i, j, _ in items_b]
        values_a = np.array([v for _, _, v in items_a])
        values_b = np.array([v for _, _, v in items_b])
        assert values_a.tobytes() == values_b.tobytes()
    n = a.matrix.n
    rhs = np.linspace(0.1, 1.0, n)
    assert a.solve(rhs).tobytes() == b.solve(rhs).tobytes()
    block = np.eye(n)[:, : min(4, n)]
    assert a.solve_many(block).tobytes() == b.solve_many(block).tobytes()


# ---------------------------------------------------------------------- #
# Full-checkpoint round trips
# ---------------------------------------------------------------------- #
class TestFullRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name)
    def test_every_kind_restores_bitwise(self, tmp_path, kind):
        snapshot = random_graph(24, 70, seed=7)
        system = factorized(snapshot, kind)
        store = FactorStore(str(tmp_path))
        key = SystemKey(snapshot, kind, damping_for(kind))
        store.save_full(key, system)
        restored = store.load(key)
        assert restored is not None
        assert_bitwise_equal(system, restored)

    def test_static_factors_restore_bitwise(self, tmp_path):
        from repro.core.clude import decompose_sequence_clude
        from repro.lu.static_structure import StaticLUFactors

        graphs = [random_graph(18, 50, seed=s) for s in range(3)]
        matrices = [
            measure_matrix(g, MatrixKind.RANDOM_WALK, 0.85) for g in graphs
        ]
        decomposition = decompose_sequence_clude(matrices).decompositions[1]
        system = FactorizedSystem(
            matrices[1], decomposition.ordering, decomposition.factors
        )
        assert isinstance(system.factors, StaticLUFactors)
        store = FactorStore(str(tmp_path))
        key = SystemKey(graphs[1], MatrixKind.RANDOM_WALK, 0.85)
        store.save_full(key, system)
        restored = store.load(key)
        assert isinstance(restored.factors, StaticLUFactors)
        assert_bitwise_equal(system, restored)
        # The static container's full slot state (stored zeros included)
        # round-trips, not just the non-zero items.
        assert (
            system.factors._diagonal.tobytes()
            == restored.factors._diagonal.tobytes()
        )
        assert system.factors._l_col_values == restored.factors._l_col_values
        assert system.factors._u_row_values == restored.factors._u_row_values

    def test_key_digest_is_content_stable(self):
        g = random_graph(10, 25, seed=1)
        same = GraphSnapshot(10, set(g.edges))
        a = system_key_digest(SystemKey(g, MatrixKind.RANDOM_WALK, 0.85))
        b = system_key_digest(SystemKey(same, MatrixKind.RANDOM_WALK, 0.85))
        assert a == b
        assert a != system_key_digest(SystemKey(g, MatrixKind.RANDOM_WALK, 0.5))
        assert a != system_key_digest(SystemKey(g, MatrixKind.SYMMETRIC_WALK, 0.85))

    def test_atomic_writes_leave_no_temp_litter(self, tmp_path):
        snapshot = random_graph(12, 30, seed=3)
        system = factorized(snapshot, MatrixKind.RANDOM_WALK)
        store = FactorStore(str(tmp_path))
        key = SystemKey(snapshot, MatrixKind.RANDOM_WALK, 0.85)
        for _ in range(3):  # overwrites go through the same atomic path
            store.save_full(key, system)
        assert glob.glob(os.path.join(str(tmp_path), ".tmp-*")) == []
        assert len(store) == 1


# ---------------------------------------------------------------------- #
# Corruption: detected, treated as a miss, never served
# ---------------------------------------------------------------------- #
def _checkpointed(tmp_path):
    snapshot = random_graph(20, 55, seed=11)
    system = factorized(snapshot, MatrixKind.RANDOM_WALK)
    store = FactorStore(str(tmp_path))
    key = SystemKey(snapshot, MatrixKind.RANDOM_WALK, 0.85)
    store.save_full(key, system)
    return store, key, store.path_for(key)


class TestCorruption:
    def test_truncated_file_is_a_miss(self, tmp_path):
        store, key, path = _checkpointed(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert store.load(key) is None
        assert store.stats()["restore_failures"] == 1

    @pytest.mark.parametrize("position", [0.1, 0.5, 0.9])
    def test_bit_flip_is_a_miss(self, tmp_path, position):
        store, key, path = _checkpointed(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[int(len(blob) * position)] ^= 0x10
        open(path, "wb").write(bytes(blob))
        assert store.load(key) is None

    def test_header_only_and_empty_and_foreign_files(self, tmp_path):
        store, key, path = _checkpointed(tmp_path)
        for content in (b"", b"RPFS", b"not a checkpoint at all" * 10):
            open(path, "wb").write(content)
            assert store.load(key) is None
        with pytest.raises(StoreFormatError):
            read_blob(path)

    def test_corrupt_checkpoint_counts_restore_fallback_in_cache(self, tmp_path):
        _, key, path = _checkpointed(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0x01
        open(path, "wb").write(bytes(blob))
        cache = FactorCache(store=FactorStore(str(tmp_path)))
        assert cache.lookup(key) is None
        info = cache.cache_info()
        assert info["misses"] == 1
        assert info["restore_fallbacks"] == 1
        assert info["store_misses"] == 1
        assert info["store_hits"] == 0

    def test_wrong_version_is_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "v.blob")
        write_blob(path, {"type": "system"}, {})
        blob = bytearray(open(path, "rb").read())
        blob[4] ^= 0xFF  # version field (little-endian u16 at offset 4)
        open(path, "wb").write(bytes(blob))
        with pytest.raises(StoreFormatError):
            read_blob(path)


# ---------------------------------------------------------------------- #
# Delta checkpoints
# ---------------------------------------------------------------------- #
class TestDeltaCheckpoints:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name)
    def test_delta_restore_equals_memory_and_full_restore(self, tmp_path, kind):
        damping = damping_for(kind)
        parent_graph = random_graph(24, 70, seed=5)
        child_graph = evolve(parent_graph, seed=6)
        parent_key = SystemKey(parent_graph, kind, damping)
        child_key = SystemKey(child_graph, kind, damping)
        store = FactorStore(str(tmp_path / "delta"))
        # SYMMETRIC_WALK renormalization touches every entry of the affected
        # rows/columns; raise the feasibility gate so all kinds refresh.
        cache = FactorCache(store=store, refresh_threshold=10.0)
        cache.seed(parent_key, factorized(parent_graph, kind))
        entries = system_delta(
            parent_graph, child_graph, kind=kind, damping=damping
        )
        child_matrix = measure_matrix(child_graph, kind=kind, damping=damping)
        child = cache.refresh(
            parent_key, child_key, entries, new_matrix=child_matrix
        )
        assert child is not None
        assert cache.checkpoint() == 2
        assert store.path_for(child_key).endswith(".delta")
        assert store.path_for(parent_key).endswith(".factors")
        # Delta-compressed: the factor payload is gone from the child file.
        assert store.file_bytes(child_key) < store.file_bytes(parent_key)
        restored = FactorStore(str(tmp_path / "delta")).load(child_key)
        assert restored is not None
        assert_bitwise_equal(child, restored)
        # A full checkpoint of the same child restores to the same bits.
        full_store = FactorStore(str(tmp_path / "full"))
        full_store.save_full(child_key, child)
        full_restored = full_store.load(child_key)
        assert_bitwise_equal(restored, full_restored)

    def test_planner_refresh_chain_spills_as_deltas(self, tmp_path):
        graphs = [random_graph(24, 70, seed=9)]
        for step in range(3):
            graphs.append(evolve(graphs[-1], seed=10 + step))
        store = FactorStore(str(tmp_path))
        planner = QueryPlanner(store=store, auto_refresh=True)
        outcomes = [planner.run([make_query("pagerank", g)]) for g in graphs]
        assert outcomes[0].stats.factorizations == 1
        assert all(o.stats.refreshes == 1 for o in outcomes[1:])
        assert planner.checkpoint() == len(graphs)
        keys = [SystemKey(g, MatrixKind.RANDOM_WALK, 0.85) for g in graphs]
        # The chain persists as one full root plus one delta per generation
        # (spilling a grandchild must not force its parent back to full).
        assert store.path_for(keys[0]).endswith(".factors")
        for key in keys[1:]:
            assert store.path_for(key).endswith(".delta")
        # Warm boot: every delta-checkpointed refresh product answers
        # bitwise, including the deepest link (three replays).
        warm = QueryPlanner(store=FactorStore(str(tmp_path)))
        for graph, cold in zip(graphs, outcomes):
            replay = warm.run([make_query("pagerank", graph)])
            assert replay.stats.factorizations == 0
            assert replay.results[0].tobytes() == cold.results[0].tobytes()
        assert warm.cache_info()["store_hits"] == len(graphs)

    def test_delta_with_mismatched_parent_generation_falls_back(self, tmp_path):
        parent_graph = random_graph(20, 60, seed=13)
        child_graph = evolve(parent_graph, seed=14)
        parent_key = SystemKey(parent_graph, MatrixKind.RANDOM_WALK, 0.85)
        child_key = SystemKey(child_graph, MatrixKind.RANDOM_WALK, 0.85)
        store = FactorStore(str(tmp_path))
        cache = FactorCache(store=store)
        parent = factorized(parent_graph, MatrixKind.RANDOM_WALK)
        cache.seed(parent_key, parent)
        entries = system_delta(parent_graph, child_graph)
        child = cache.refresh(
            parent_key,
            child_key,
            entries,
            new_matrix=measure_matrix(child_graph),
        )
        cache.checkpoint()
        # Replace the parent's checkpoint with a *different* payload: the
        # recorded payload digest no longer matches, so the delta must not
        # replay against it.
        other = factorized(evolve(parent_graph, seed=99), MatrixKind.RANDOM_WALK)
        store.save_full(parent_key, other)
        assert store.load(child_key) is None
        assert store.stats()["restore_failures"] == 1
        assert child is not None  # the in-memory system is unaffected


# ---------------------------------------------------------------------- #
# Cache integration: spill on eviction, restore on miss, counters
# ---------------------------------------------------------------------- #
class TestCacheIntegration:
    def test_eviction_spills_and_miss_restores(self, tmp_path):
        store = FactorStore(str(tmp_path))
        cache = FactorCache(max_systems=1, store=store)
        graphs = [random_graph(16, 40, seed=s) for s in (21, 22)]
        keys = [SystemKey(g, MatrixKind.RANDOM_WALK, 0.85) for g in graphs]
        systems = [factorized(g, MatrixKind.RANDOM_WALK) for g in graphs]
        cache.store(keys[0], systems[0])
        cache.store(keys[1], systems[1])  # evicts keys[0] -> spill
        info = cache.cache_info()
        assert info["evictions"] == 1 and info["spills"] == 1
        restored = cache.lookup(keys[0])  # miss -> store hit, re-installed
        assert restored is not None
        assert_bitwise_equal(systems[0], restored)
        info = cache.cache_info()
        assert info["store_hits"] == 1
        # Restoring keys[0] into a 1-slot cache evicted (and spilled) keys[1].
        assert info["spills"] == 2

    def test_storeless_cache_info_shape_is_unchanged(self):
        assert FactorCache().cache_info() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "refreshes": 0,
            "refresh_fallbacks": 0,
            "size": 0,
        }

    def test_store_cache_info_shape(self, tmp_path):
        cache = FactorCache(store=FactorStore(str(tmp_path)))
        assert cache.cache_info() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "refreshes": 0,
            "refresh_fallbacks": 0,
            "size": 0,
            "store_hits": 0,
            "store_misses": 0,
            "spills": 0,
            "restore_fallbacks": 0,
        }

    def test_checkpoint_requires_a_store(self):
        with pytest.raises(MeasureError):
            FactorCache().checkpoint()
        with pytest.raises(MeasureError):
            QueryPlanner().checkpoint()

    def test_planner_rejects_cache_and_store_together(self, tmp_path):
        with pytest.raises(MeasureError):
            QueryPlanner(
                cache=FactorCache(), store=FactorStore(str(tmp_path))
            )

    def test_clear_keeps_the_disk_tier(self, tmp_path):
        store = FactorStore(str(tmp_path))
        cache = FactorCache(store=store)
        g = random_graph(14, 35, seed=31)
        key = SystemKey(g, MatrixKind.RANDOM_WALK, 0.85)
        system = factorized(g, MatrixKind.RANDOM_WALK)
        cache.store(key, system)
        cache.checkpoint()
        cache.clear()
        restored = cache.lookup(key)
        assert restored is not None
        assert_bitwise_equal(system, restored)


# ---------------------------------------------------------------------- #
# Server warm restart
# ---------------------------------------------------------------------- #
class TestServerWarmRestart:
    def test_restarted_server_first_batch_is_bitwise_and_warm(self, tmp_path):
        g1 = random_graph(28, 90, seed=41)
        g2 = random_graph(28, 90, seed=42)
        submissions = [
            ("rwr", g1, {"start_node": 3}),
            ("rwr", g1, {"start_node": 7}),
            ("pagerank", g2, {}),
            ("salsa_authority", g1, {"node": 2}),
        ]

        def run_server(directory):
            with MeasureServer(
                store=FactorStore(directory), max_wait_ms=0
            ) as server:
                futures = [
                    server.submit_measure(measure, snapshot, **params)
                    for measure, snapshot, params in submissions
                ]
                answers = [f.result(timeout=10) for f in futures]
                server.checkpoint().result(timeout=10)
                info = server.planner.cache_info()
            return answers, info

        first_answers, first_info = run_server(str(tmp_path))
        assert first_info["store_hits"] == 0  # cold boot factorized
        second_answers, second_info = run_server(str(tmp_path))
        # Zero cold factorizations: every memory miss was served from disk.
        assert second_info["store_hits"] == second_info["misses"]
        assert second_info["store_misses"] == 0
        for a, b in zip(first_answers, second_answers):
            assert a.tobytes() == b.tobytes()

    def test_server_checkpoint_without_store_reports_on_future(self):
        with MeasureServer(max_wait_ms=0) as server:
            with pytest.raises(MeasureError):
                server.checkpoint().result(timeout=10)
