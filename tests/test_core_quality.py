"""Tests for the quality-loss measure and the Markowitz reference cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import (
    MarkowitzReference,
    markowitz_reference_size,
    quality_loss,
    symbolic_size_under_ordering,
)
from repro.errors import DimensionError
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.permutation import Ordering, random_ordering
from tests.conftest import random_dd_matrix


class TestSymbolicSizeUnderOrdering:
    def test_identity_ordering_equals_plain_symbolic_size(self, rng):
        from repro.lu.symbolic import symbolic_pattern_size

        matrix = random_dd_matrix(14, 45, rng)
        size = symbolic_size_under_ordering(matrix, Ordering.identity(14))
        assert size == symbolic_pattern_size(matrix.pattern())

    def test_dimension_mismatch(self, rng):
        with pytest.raises(DimensionError):
            symbolic_size_under_ordering(random_dd_matrix(5, 10, rng), Ordering.identity(6))


class TestQualityLoss:
    def test_markowitz_ordering_has_zero_loss(self, rng):
        matrix = random_dd_matrix(16, 55, rng)
        ordering = markowitz_ordering(matrix)
        assert quality_loss(ordering, matrix) == pytest.approx(0.0)

    def test_random_ordering_has_nonnegative_loss(self, rng):
        """ql >= 0 whenever the reference really is the Markowitz size."""
        for _ in range(5):
            matrix = random_dd_matrix(16, 60, rng)
            ordering = random_ordering(16, rng)
            assert quality_loss(ordering, matrix) >= -1e-9

    def test_explicit_reference_size(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        ordering = markowitz_ordering(matrix)
        reference = markowitz_reference_size(matrix)
        assert quality_loss(ordering, matrix, reference_size=reference) == pytest.approx(0.0)

    def test_zero_reference_rejected(self, rng):
        matrix = random_dd_matrix(5, 10, rng)
        with pytest.raises(DimensionError):
            quality_loss(Ordering.identity(5), matrix, reference_size=0)

    def test_symmetric_reference_path_consistent(self, rng):
        """For symmetric matrices, the fast reference equals the generic one."""
        n = 14
        dense = np.zeros((n, n))
        for _ in range(35):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                dense[i, j] = dense[j, i] = -0.2
        for i in range(n):
            dense[i, i] = 1.0 + np.sum(np.abs(dense[i]))
        from repro.sparse.csr import SparseMatrix

        matrix = SparseMatrix.from_dense(dense)
        generic = markowitz_reference_size(matrix, symmetric=False)
        fast = markowitz_reference_size(matrix, symmetric=True)
        # Both are valid Markowitz-style references; they must be close (the
        # orderings may differ slightly) and the fast one must be a genuine
        # symbolic size (at least n).
        assert fast >= n
        assert abs(fast - generic) / generic < 0.35


class TestMarkowitzReference:
    def test_caching(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        reference = MarkowitzReference()
        first = reference.size_for(0, matrix)
        second = reference.size_for(0, matrix)
        assert first == second
        assert reference.known_sizes() == {0: first}

    def test_precompute_and_quality(self, rng):
        matrices = [random_dd_matrix(10, 30, rng) for _ in range(3)]
        reference = MarkowitzReference()
        reference.precompute(matrices)
        assert set(reference.known_sizes()) == {0, 1, 2}
        ordering = markowitz_ordering(matrices[1])
        assert reference.quality_loss(1, ordering, matrices[1]) == pytest.approx(0.0)
