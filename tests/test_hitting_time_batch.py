"""Many-target hitting time on one shared factorization.

The masked per-target DHT system is a rank-1 update of the unmasked
``I - d P``; Sherman–Morrison reduces each masked solve to ``h = y / y[t]``
with ``y = A⁻¹ e_t`` (see :mod:`repro.measures.hitting_time`).  Pinned here:

* the shared-system block matches the per-target driver to numerical
  tolerance on every column (differential, incl. hypothesis sweeps over
  random graphs with unreachable nodes and dangling targets);
* the planner answers ``k`` shared-hitting targets with **one** group and
  **one** factorization, where the legacy spec needs ``k``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.snapshot import GraphSnapshot
from repro.measures.hitting_time import (
    discounted_hitting_scores,
    discounted_hitting_scores_many,
)
from repro.query import QueryBatch, QueryPlanner
from repro.query.spec import evaluate, make_query

TOLERANCE = 1e-9


def random_snapshot(rng: np.random.Generator, n: int, edges: int) -> GraphSnapshot:
    pool = set()
    attempts = 0
    while len(pool) < edges and attempts < 50 * edges:
        u, v = rng.integers(0, n, size=2)
        attempts += 1
        if u != v:
            pool.add((int(u), int(v)))
    return GraphSnapshot(n, pool, directed=True)


class TestDifferential:
    def test_all_targets_match_per_target_path(self, tiny_graph):
        targets = list(range(tiny_graph.n))
        block = discounted_hitting_scores_many(tiny_graph, targets)
        assert block.shape == (tiny_graph.n, tiny_graph.n)
        for column, target in enumerate(targets):
            reference = discounted_hitting_scores(tiny_graph, target)
            assert np.max(np.abs(block[:, column] - reference)) < TOLERANCE

    def test_dangling_target_and_unreachable_nodes(self):
        # Node 3 has no out-edges (dangling); node 4 is isolated.
        snapshot = GraphSnapshot(5, [(0, 1), (1, 2), (2, 0), (2, 3)])
        block = discounted_hitting_scores_many(snapshot, [3, 0])
        for column, target in enumerate([3, 0]):
            reference = discounted_hitting_scores(snapshot, target)
            assert np.max(np.abs(block[:, column] - reference)) < TOLERANCE
        # the isolated node can reach nothing: score 0 towards both targets
        assert block[4, 0] == 0.0 and block[4, 1] == 0.0
        # the target itself always scores 1
        assert block[3, 0] == pytest.approx(1.0)
        assert block[0, 1] == pytest.approx(1.0)

    def test_empty_target_list(self, tiny_graph):
        block = discounted_hitting_scores_many(tiny_graph, [])
        assert block.shape == (tiny_graph.n, 0)

    def test_non_default_damping(self, tiny_graph):
        block = discounted_hitting_scores_many(tiny_graph, [2, 5], damping=0.6)
        for column, target in enumerate([2, 5]):
            reference = discounted_hitting_scores(tiny_graph, target, damping=0.6)
            assert np.max(np.abs(block[:, column] - reference)) < TOLERANCE

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        damping=st.sampled_from([0.5, 0.85, 0.95]),
    )
    def test_random_graphs_differential(self, seed, damping):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 25))
        snapshot = random_snapshot(rng, n, int(rng.integers(n, 4 * n)))
        targets = sorted(rng.choice(n, size=min(4, n), replace=False).tolist())
        block = discounted_hitting_scores_many(snapshot, targets, damping=damping)
        for column, target in enumerate(targets):
            reference = discounted_hitting_scores(snapshot, target, damping=damping)
            assert np.max(np.abs(block[:, column] - reference)) < TOLERANCE


class TestPlannerIntegration:
    def test_shared_targets_form_one_group(self, tiny_graph):
        shared = QueryBatch()
        legacy = QueryBatch()
        for target in range(tiny_graph.n):
            shared.add_hitting_time(tiny_graph, target, shared=True)
            legacy.add_hitting_time(tiny_graph, target)
        shared_outcome = QueryPlanner().run(shared)
        assert shared_outcome.stats.groups == 1
        assert shared_outcome.stats.factorizations == 1
        legacy_outcome = QueryPlanner().run(legacy)
        assert legacy_outcome.stats.groups == tiny_graph.n
        assert legacy_outcome.stats.factorizations == tiny_graph.n
        for left, right in zip(shared_outcome, legacy_outcome):
            assert np.max(np.abs(left - right)) < TOLERANCE

    def test_missing_target_rejected_at_query_construction(self, tiny_graph):
        from repro.errors import MeasureError

        with pytest.raises(MeasureError, match="requires parameter 'target'"):
            make_query("hitting_time_shared", tiny_graph)
        with pytest.raises(MeasureError, match="requires parameter 'target'"):
            make_query("hitting_time", tiny_graph)
        with pytest.raises(MeasureError, match="requires parameter 'start_node'"):
            make_query("rwr", tiny_graph)
        with pytest.raises(MeasureError, match="requires parameter 'seeds'"):
            make_query("ppr", tiny_graph)

    def test_single_query_engine_matches_driver(self, tiny_graph):
        answer = evaluate(make_query("hitting_time_shared", tiny_graph, target=3))
        block = discounted_hitting_scores_many(tiny_graph, [3])
        assert answer.tobytes() == block[:, 0].tobytes()

    def test_shared_and_masked_never_share_a_group(self, tiny_graph):
        batch = (QueryBatch()
                 .add_hitting_time(tiny_graph, 0, shared=True)
                 .add_hitting_time(tiny_graph, 0))
        outcome = QueryPlanner().run(batch)
        assert outcome.stats.groups == 2
        assert np.max(np.abs(outcome[0] - outcome[1])) < TOLERANCE
