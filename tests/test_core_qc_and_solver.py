"""Tests for the LUDEM-QC drivers, problem definitions and the EMSSolver facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import LUDEMProblem, LUDEMQCProblem
from repro.core.qc import solve_qc_cinc, solve_qc_clude
from repro.core.quality import MarkowitzReference
from repro.core.solver import ALGORITHMS, EMSSolver, available_algorithms
from repro.errors import ClusteringError, MeasureError, NotSymmetricError
from repro.lu.validate import factors_are_valid


class TestProblemDefinitions:
    def test_ludem_problem_basic(self, tiny_ems):
        problem = LUDEMProblem(ems=tiny_ems, similarity_threshold=0.9)
        assert problem.length == len(tiny_ems)
        assert problem.n == tiny_ems.n

    def test_ludem_problem_rejects_bad_alpha(self, tiny_ems):
        with pytest.raises(ClusteringError):
            LUDEMProblem(ems=tiny_ems, similarity_threshold=1.2)

    def test_qc_problem_requires_symmetry(self, tiny_ems, tiny_symmetric_ems):
        LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.1)
        with pytest.raises(NotSymmetricError):
            LUDEMQCProblem(ems=tiny_ems, quality_requirement=0.1)

    def test_qc_problem_rejects_negative_beta(self, tiny_symmetric_ems):
        with pytest.raises(ClusteringError):
            LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=-0.1)


class TestQCDrivers:
    @pytest.mark.parametrize("driver", [solve_qc_cinc, solve_qc_clude])
    def test_quality_constraint_enforced(self, driver, tiny_symmetric_ems):
        beta = 0.2
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=beta)
        reference = MarkowitzReference(symmetric=True)
        result = driver(problem, reference=reference)
        matrices = list(tiny_symmetric_ems)
        losses = result.quality_losses(matrices, reference)
        assert all(loss <= beta + 1e-9 for loss in losses)

    @pytest.mark.parametrize("driver", [solve_qc_cinc, solve_qc_clude])
    def test_factors_valid(self, driver, tiny_symmetric_ems):
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.25)
        result = driver(problem)
        for decomposition, matrix in zip(result.decompositions, tiny_symmetric_ems):
            assert factors_are_valid(
                decomposition.factors, matrix, decomposition.ordering, tolerance=1e-6
            )

    def test_looser_beta_gives_fewer_or_equal_clusters(self, tiny_symmetric_ems):
        tight = solve_qc_clude(LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.0))
        loose = solve_qc_clude(LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.5))
        assert loose.cluster_count <= tight.cluster_count

    def test_algorithm_names(self, tiny_symmetric_ems):
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.2)
        assert solve_qc_cinc(problem).algorithm == "CINC-QC"
        assert solve_qc_clude(problem).algorithm == "CLUDE-QC"


class TestEMSSolver:
    def test_registry_contents(self):
        assert set(available_algorithms()) == {"BF", "INC", "CINC", "CLUDE"}
        assert set(ALGORITHMS) == {"BF", "INC", "CINC", "CLUDE"}

    @pytest.mark.parametrize("algorithm", ["BF", "INC", "CINC", "CLUDE"])
    def test_solver_end_to_end(self, algorithm, tiny_ems):
        solver = EMSSolver(tiny_ems, algorithm=algorithm, alpha=0.9)
        result = solver.decompose()
        assert len(result) == len(tiny_ems)
        assert solver.verify() < 1e-7

    def test_decompose_is_idempotent(self, tiny_ems):
        solver = EMSSolver(tiny_ems, algorithm="CLUDE", alpha=0.9)
        first = solver.decompose()
        second = solver.decompose()
        assert first is second

    def test_solve_and_series(self, tiny_ems):
        solver = EMSSolver(tiny_ems, algorithm="CLUDE", alpha=0.9)
        rng = np.random.default_rng(1)
        b = rng.random(tiny_ems.n)
        series = solver.solve_series(b)
        assert series.shape == (len(tiny_ems), tiny_ems.n)
        single = solver.solve(2, b)
        assert np.allclose(series[2], single)

    def test_unknown_algorithm_rejected(self, tiny_ems):
        with pytest.raises(MeasureError):
            EMSSolver(tiny_ems, algorithm="FAST")

    def test_case_insensitive_algorithm(self, tiny_ems):
        solver = EMSSolver(tiny_ems, algorithm="clude", alpha=0.9)
        assert solver.algorithm == "CLUDE"
