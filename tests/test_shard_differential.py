"""Sharded == serial differential across all six resolution tiers.

Runs the full tier scenario sweep (``tests/shard_workload.py``) against a
serial :class:`~repro.query.planner.QueryPlanner` and against
:class:`~repro.shard.planner.ShardedPlanner` with 1, 2 and 4 shards, and
requires the transcripts — answer byte digests, legacy stats counters,
shape-stable per-tier resolution counts, approximation audit records
(positions, similarity/loss bits, rank, mode, order), cache counters and
checkpoint counts — to compare equal.

Spawns several worker pools per shard count, so the module is ``slow``
(run by the sharded-differential CI job with a timeout guard).
"""

from __future__ import annotations

import pytest

from shard_workload import run_workload, serial_factory, sharded_factory

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def serial_transcript(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serial_store")
    return run_workload(serial_factory, str(store_dir))


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_transcript_matches_serial(serial_transcript, shards, tmp_path):
    sharded = run_workload(sharded_factory(shards), str(tmp_path / "store"))
    assert sharded.keys() == serial_transcript.keys()
    for scenario in serial_transcript:
        assert sharded[scenario] == serial_transcript[scenario], (
            f"shards={shards}: scenario {scenario!r} diverged from serial"
        )
