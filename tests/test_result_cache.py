"""The planner-level result cache: answer reuse with strict invalidation.

Contracts pinned here:

* a repeated identical query never re-runs the substitution sweep, and the
  cached answer is byte-for-byte the freshly computed one;
* cached arrays are value-isolated in both directions (caller mutation never
  corrupts the cache, cache eviction never corrupts a caller);
* answers never outlive the factors they came from — factor-cache eviction,
  refresh installs and stealing refreshes all drop the derived entries;
* approximate (policy-reused) answers are never cached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import QCPolicy
from repro.query import FactorCache, QueryBatch, QueryPlanner, ResultCache, make_query


@pytest.fixture
def second_graph() -> GraphSnapshot:
    edges = [(0, 3), (3, 1), (1, 0), (1, 4), (4, 2), (2, 3), (2, 5), (5, 0), (4, 5)]
    return GraphSnapshot(6, edges, directed=True)


def evolved(snapshot: GraphSnapshot) -> GraphSnapshot:
    (u, v) = sorted(snapshot.edges)[0]
    return snapshot.with_edges(added=[(v, u)] if (v, u) not in snapshot.edges else [],
                               removed=[(u, v)])


class TestResultReuse:
    def test_repeat_batch_hits_and_matches_bitwise(self, tiny_graph):
        planner = QueryPlanner()
        batch = (QueryBatch()
                 .add_pagerank(tiny_graph)
                 .add_rwr(tiny_graph, 2)
                 .add_ppr(tiny_graph, [0, 4]))
        first = planner.run(batch)
        assert first.stats.result_hits == 0
        second = planner.run(batch)
        assert second.stats.result_hits == 3
        info = planner.cache_info()
        assert info["result_hits"] == 3
        assert info["result_misses"] == 3
        assert info["result_size"] == 3
        for left, right in zip(first, second):
            assert left.tobytes() == right.tobytes()

    def test_pure_specs_share_entries_across_measures(self, tiny_graph):
        # RWR from u and single-seed PPR at u build the same RHS against the
        # same system and apply no transform: one entry serves both.
        planner = QueryPlanner()
        first = planner.run(QueryBatch().add_rwr(tiny_graph, 3))
        second = planner.run(QueryBatch().add_ppr(tiny_graph, [3]))
        assert second.stats.result_hits == 1
        assert first[0].tobytes() == second[0].tobytes()

    def test_transform_specs_key_on_params(self, tiny_graph):
        # hitting_time_shared shares one system and one RHS shape, but its
        # transform depends on the target: different targets are distinct
        # entries (and different answers).
        planner = QueryPlanner()
        planner.run(QueryBatch().add_hitting_time(tiny_graph, 0, shared=True))
        outcome = planner.run(QueryBatch().add_hitting_time(tiny_graph, 0, shared=True))
        assert outcome.stats.result_hits == 1
        other = planner.run(QueryBatch().add_hitting_time(tiny_graph, 1, shared=True))
        assert other.stats.result_hits == 0

    def test_caller_mutation_does_not_corrupt_cache(self, tiny_graph):
        planner = QueryPlanner()
        first = planner.run(QueryBatch().add_pagerank(tiny_graph))
        pristine = first[0].copy()
        first[0][:] = -1.0
        second = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert second.stats.result_hits == 1
        assert second[0].tobytes() == pristine.tobytes()
        second[0][:] = 7.0
        third = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert third[0].tobytes() == pristine.tobytes()

    def test_disabled_result_cache(self, tiny_graph):
        planner = QueryPlanner(result_cache=0)
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        outcome = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert planner.result_cache is None
        assert outcome.stats.result_hits == 0
        assert planner.cache_info()["result_size"] == 0

    def test_explicit_instance_and_int_bounds(self, tiny_graph, second_graph):
        cache = ResultCache(max_entries=1)
        planner = QueryPlanner(result_cache=cache)
        assert planner.result_cache is cache
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        planner.run(QueryBatch().add_pagerank(second_graph))  # evicts the first
        info = cache.cache_info()
        assert info["evictions"] == 1
        assert info["size"] == 1
        outcome = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert outcome.stats.result_hits == 0
        with pytest.raises(MeasureError):
            ResultCache(max_entries=0)
        bounded = QueryPlanner(result_cache=4)
        assert bounded.result_cache is not None

    def test_bool_result_cache_means_default_or_disabled(self):
        # bools are ints: True must not build a degenerate 1-entry cache.
        from repro.query.planner import DEFAULT_RESULT_CACHE_SIZE

        enabled = QueryPlanner(result_cache=True)
        assert enabled.result_cache is not None
        assert enabled.result_cache._max_entries == DEFAULT_RESULT_CACHE_SIZE
        assert QueryPlanner(result_cache=False).result_cache is None
        with pytest.raises(MeasureError):
            QueryPlanner(result_cache=-100)


class TestInvalidation:
    def test_factor_eviction_drops_derived_answers(self, tiny_graph, second_graph):
        planner = QueryPlanner(cache=FactorCache(max_systems=1))
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        planner.run(QueryBatch().add_pagerank(second_graph))  # evicts tiny's factors
        info = planner.cache_info()
        assert info["result_invalidations"] == 1
        # Re-answering tiny is a fresh factorization AND a fresh solve.
        outcome = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert outcome.stats.result_hits == 0
        assert outcome.stats.factorizations == 1

    def test_refresh_install_drops_stale_answers_for_key(self, tiny_graph):
        # Answer `after` cold on one planner; then force a *refresh* install
        # under the same key on a shared cache: the refreshed factors must
        # invalidate the previously cached answers for that key.
        after = evolved(tiny_graph)
        cache = FactorCache()
        planner = QueryPlanner(cache=cache)
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        baseline = planner.run(QueryBatch().add_pagerank(after))
        assert baseline.stats.factorizations == 1
        size_before = planner.cache_info()["result_size"]
        planner.register_evolution(tiny_graph, after)
        from repro.graphs.matrixkind import system_delta
        from repro.query.spec import make_query, system_key

        old_key = system_key(make_query("pagerank", tiny_graph))
        new_key = system_key(make_query("pagerank", after))
        refreshed = cache.refresh(
            old_key, new_key, system_delta(tiny_graph, after)
        )
        assert refreshed is not None
        info = planner.cache_info()
        assert info["result_size"] < size_before
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.result_hits == 0  # recomputed from new factors

    def test_steal_refresh_invalidates_the_parent_key(self, tiny_graph):
        after = evolved(tiny_graph)
        cache = FactorCache()
        planner = QueryPlanner(cache=cache)
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert planner.cache_info()["result_size"] == 1
        from repro.graphs.matrixkind import system_delta
        from repro.query.spec import make_query, system_key

        old_key = system_key(make_query("pagerank", tiny_graph))
        new_key = system_key(make_query("pagerank", after))
        assert cache.refresh(
            old_key, new_key, system_delta(tiny_graph, after), steal=True
        ) is not None
        assert planner.cache_info()["result_size"] == 0

    def test_clear_invalidates_everything(self, tiny_graph):
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        planner.cache.clear()
        assert planner.cache_info()["result_size"] == 0

    def test_approximate_answers_cache_under_the_parent_key(self, tiny_graph):
        # A pure spec's approximate answer IS the parent system's answer for
        # that RHS, so it is cached under the PARENT's key (never the miss
        # key): repeated approximate traffic skips the solve, entries die
        # with the parent's factors, and a later exact answer for the miss
        # key is never shadowed.
        after = evolved(tiny_graph)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
        planner.run(QueryBatch().add_rwr(tiny_graph, 0))
        approx = planner.run(QueryBatch().add_rwr(after, 2))
        assert approx.stats.qc_reuses == 1
        again = planner.run(QueryBatch().add_rwr(after, 2))
        assert again.stats.qc_reuses == 1
        assert again.stats.result_hits == 1  # repeated approximate batch: no solve
        assert again[0].tobytes() == approx[0].tobytes()
        # The parent's own query for the same RHS shares the entry — and it
        # is byte-identical, because it is literally the same system + RHS.
        parent_same_rhs = planner.run(QueryBatch().add_rwr(tiny_graph, 2))
        assert parent_same_rhs.stats.result_hits == 1
        assert parent_same_rhs[0].tobytes() == approx[0].tobytes()


class TestReviewRegressions:
    def test_policy_reused_groups_bypass_result_cache_even_after_orphaned_store(
        self, tiny_graph, second_graph
    ):
        # Bounded factor cache smaller than the batch: tiny's factors are
        # evicted before its answers are computed, so those answers must not
        # be stored (they would outlive their factors) — and a later
        # policy-reused group for tiny must not consult the result cache at
        # all (its approximate answer would otherwise be silently replaced
        # by a stale exact one, double-counted as qc_reuse + result_hit).
        from repro.query import FactorCache

        planner = QueryPlanner(
            cache=FactorCache(max_systems=1),
            policy=QCPolicy(alpha=0.0, loss_bound=1e12),
        )
        first = planner.run(
            QueryBatch().add_pagerank(tiny_graph).add_pagerank(second_graph)
        )
        assert first.stats.factorizations == 2
        # Only the surviving key's answers may be cached.
        assert planner.cache_info()["result_size"] == 1
        # tiny_graph's system differs in size from second_graph's, so no QC
        # candidate exists for it: re-answering is a cold start with zero
        # stale result hits.
        again = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert again.stats.result_hits == 0
        assert again.stats.factorizations == 1

    def test_qc_reuse_and_result_hits_never_double_count(self, tiny_graph):
        from repro.query import FactorCache

        after = evolved(tiny_graph)
        planner = QueryPlanner(
            cache=FactorCache(max_systems=1),
            policy=QCPolicy(alpha=0.0, loss_bound=1e12),
        )
        # Cache `after`'s exact answer, then churn the single-slot factor
        # cache through two different-damping systems (different damping =
        # never a QC candidate, so each run cold-factorizes and evicts the
        # previous key), landing on tiny_graph@0.85 as the only cached
        # system.  `after`'s factors are long gone; its results must be too.
        planner.run(QueryBatch().add_pagerank(after))
        planner.run(QueryBatch().add_pagerank(tiny_graph, damping=0.6))
        assert planner.cache_info()["result_invalidations"] == 1
        third = planner.run(QueryBatch().add_pagerank(tiny_graph))
        # `after` is now a miss answered by policy reuse from tiny_graph's
        # factors.  The stale `after` entries are long invalidated; the
        # lookup happens under the PARENT's key, where the uniform-teleport
        # RHS legitimately hits tiny_graph's own answer — which is exactly,
        # byte for byte, what the reuse solve would have produced.
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.qc_reuses == 1
        assert outcome.stats.factorizations == 0
        assert outcome.stats.result_hits == 1
        assert outcome[0].tobytes() == third[0].tobytes()
        exact = QueryPlanner().run(QueryBatch().add_pagerank(after))
        assert outcome[0].tobytes() != exact[0].tobytes()  # genuinely approximate

    def test_dead_planner_listeners_are_pruned_from_shared_cache(self, tiny_graph):
        import gc

        from repro.query import FactorCache

        shared = FactorCache()
        for _ in range(3):
            planner = QueryPlanner(cache=shared)
            planner.run(QueryBatch().add_pagerank(tiny_graph))
        del planner
        gc.collect()
        assert len(shared._invalidation_listeners) == 3
        # The next install fires invalidation, which prunes dead resolvers.
        survivor = QueryPlanner(cache=shared)
        survivor.run(QueryBatch().add_pagerank(tiny_graph, damping=0.6))
        assert len(shared._invalidation_listeners) == 1
        assert shared._invalidation_listeners[0]() is not None


class TestResultCacheUnit:
    def test_lookup_store_counters(self):
        cache = ResultCache(max_entries=2)
        key = ("system", None, b"fp")
        assert cache.lookup(key) is None
        cache.store(key, np.arange(3.0))
        hit = cache.lookup(key)
        assert np.array_equal(hit, np.arange(3.0))
        info = cache.cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (1, 1, 1)
        cache.clear()
        assert cache.cache_info()["size"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        a, b, c = (("s", None, bytes([i])) for i in range(3))
        cache.store(a, np.zeros(2))
        cache.store(b, np.ones(2))
        assert cache.lookup(a) is not None  # freshen a; b becomes the victim
        cache.store(c, np.full(2, 2.0))
        assert cache.lookup(b) is None
        assert cache.lookup(a) is not None
        assert cache.cache_info()["evictions"] == 1

    def test_invalidate_system_scopes_to_one_key(self):
        cache = ResultCache()
        cache.store(("sys1", None, b"x"), np.zeros(2))
        cache.store(("sys1", None, b"y"), np.ones(2))
        cache.store(("sys2", None, b"x"), np.full(2, 3.0))
        cache.invalidate_system("sys1")
        assert cache.lookup(("sys1", None, b"x")) is None
        assert cache.lookup(("sys2", None, b"x")) is not None
        assert cache.cache_info()["invalidations"] == 2


class TestParamCanonicalization:
    """Equivalent parameter spellings must map to one cache entry.

    Regression: the result-cache key carried ``query.params`` verbatim, so a
    seed set passed as a list vs a tuple vs a frozenset (or node ids as
    ``np.int64`` vs ``int``) produced distinct keys and re-solved answers the
    cache already held.  ``make_query`` now canonicalizes values — numpy
    scalars to Python scalars, sequences to tuples (order preserved: it is
    the RHS accumulation order), sets to *sorted* tuples — and the planner
    re-canonicalizes defensively when keying results.
    """

    def _hits_for_respelling(self, tiny_graph, first_params, second_params):
        planner = QueryPlanner()
        planner.run(QueryBatch().add(make_query("ppr", tiny_graph, **first_params)))
        outcome = planner.run(
            QueryBatch().add(make_query("ppr", tiny_graph, **second_params))
        )
        return outcome.stats

    def test_list_tuple_and_array_seed_spellings_share_one_entry(self, tiny_graph):
        for respelling in (
            {"seeds": (1, 4, 2)},
            {"seeds": [1, 4, 2]},
            {"seeds": np.array([1, 4, 2])},
            {"seeds": [np.int64(1), np.int64(4), np.int64(2)]},
        ):
            stats = self._hits_for_respelling(
                tiny_graph, {"seeds": [1, 4, 2]}, respelling
            )
            assert stats.result_hits == 1, respelling
            assert stats.factorizations == 0, respelling

    def test_set_spellings_are_order_insensitive(self, tiny_graph):
        # Unordered collections canonicalize to a sorted tuple, so the
        # accident of hash iteration order cannot split cache entries.
        stats = self._hits_for_respelling(
            tiny_graph, {"seeds": frozenset({4, 1, 2})}, {"seeds": {2, 4, 1}}
        )
        assert stats.result_hits == 1

    def test_numpy_scalar_node_id_matches_python_int(self, tiny_graph):
        planner = QueryPlanner()
        planner.run(QueryBatch().add(make_query("rwr", tiny_graph, start_node=3)))
        outcome = planner.run(
            QueryBatch().add(
                make_query("rwr", tiny_graph, start_node=np.int64(3))
            )
        )
        assert outcome.stats.result_hits == 1

    def test_equivalent_spellings_are_equal_queries(self, tiny_graph):
        a = make_query("ppr", tiny_graph, seeds=[1, 4])
        b = make_query("ppr", tiny_graph, seeds=(np.int64(1), np.int64(4)))
        assert a == b
        assert hash(a) == hash(b)

    def test_ordered_seed_spellings_preserve_order(self, tiny_graph):
        # Order of an explicit sequence is semantic (RHS accumulation order);
        # canonicalization must not sort it into a different query.
        a = make_query("ppr", tiny_graph, seeds=[4, 1])
        b = make_query("ppr", tiny_graph, seeds=[1, 4])
        assert a.params != b.params

    def test_array_params_are_hashable(self, tiny_graph):
        query = make_query("ppr", tiny_graph, seeds=np.array([0, 2]))
        hash(query)  # np.ndarray params used to make the query unhashable
        outcome = QueryPlanner().run(QueryBatch().add(query))
        reference = QueryPlanner().run(
            QueryBatch().add(make_query("ppr", tiny_graph, seeds=[0, 2]))
        )
        assert outcome[0].tobytes() == reference[0].tobytes()
