"""Property-based invariants of α- and β-clustering (paper Algorithms 1, 4, 5).

Randomized matrix sequences (hypothesis-driven but derandomized, so every
run draws the same fixed seeds) must always yield clusterings that are

* contiguous — every cluster is a ``start … stop-1`` range,
* non-overlapping and covering — the clusters tile ``0 … T-1`` exactly,
* α-bounded (α-clustering): the compactness ``mes(A_∩, A_∪)`` of every
  cluster stays at least α, and greedy maximality holds — extending a
  cluster with the next matrix would break the bound,
* β-bounded (QC variants): the shared ordering of every cluster keeps every
  *checked* member's quality-loss within β (Algorithm 4 checks candidates
  against the first member's ordering; Algorithm 5 checks the union
  ordering's upper bound against every member).
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    alpha_clustering,
    beta_clustering_cinc,
    beta_clustering_clude,
    clusters_cover_sequence,
)
from repro.core.quality import MarkowitzReference, symbolic_size_under_ordering
from repro.core.similarity import cluster_compactness, cluster_union_matrix
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.graphs.matrixkind import MatrixKind
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
deltas = st.integers(min_value=4, max_value=26)
alphas = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
betas = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


def _sequence(seed: int, delta_edges: int, snapshots: int = 6) -> List[SparseMatrix]:
    config = SyntheticEGSConfig(
        nodes=28,
        edge_pool_size=252,
        average_degree=3,
        delta_edges=delta_edges,
        snapshots=snapshots,
        seed=seed,
    )
    egs = generate_synthetic_egs(config)
    return list(EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK))


def assert_partition_invariants(clusters, length: int) -> None:
    """Contiguous, non-overlapping, covering — checked both ways."""
    assert clusters_cover_sequence(clusters, length)
    position = 0
    for cluster in clusters:
        assert cluster.start == position
        assert cluster.stop > cluster.start
        assert list(cluster.indices) == list(range(cluster.start, cluster.stop))
        position = cluster.stop
    assert position == length


@SETTINGS
@given(seed=seeds, delta_edges=deltas, alpha=alphas)
def test_alpha_clustering_invariants(seed, delta_edges, alpha):
    matrices = _sequence(seed, delta_edges)
    clusters = alpha_clustering(matrices, alpha)
    assert_partition_invariants(clusters, len(matrices))
    for position, cluster in enumerate(clusters):
        members = [matrices[i] for i in cluster.indices]
        # Every produced cluster honours the α bound...
        assert cluster_compactness(members) >= alpha
        # ...and is greedily maximal: absorbing the next matrix would break it.
        if position + 1 < len(clusters):
            next_first = matrices[clusters[position + 1].start]
            assert cluster_compactness(members + [next_first]) < alpha


@SETTINGS
@given(seed=seeds, delta_edges=deltas, beta=betas)
def test_beta_clustering_cinc_invariants(seed, delta_edges, beta):
    matrices = _sequence(seed, delta_edges)
    reference = MarkowitzReference()
    clusters = beta_clustering_cinc(matrices, beta, reference)
    assert_partition_invariants(clusters, len(matrices))
    checker = MarkowitzReference()
    for cluster in clusters:
        shared_ordering = markowitz_ordering(matrices[cluster.start])
        for index in cluster.indices:
            # Algorithm 4's admission test, re-evaluated independently: the
            # first member's ordering must keep every member within β.  (The
            # first member scores exactly 0 by Definition 4.)
            loss = checker.quality_loss(index, shared_ordering, matrices[index])
            assert loss <= beta


@SETTINGS
@given(seed=seeds, delta_edges=deltas, beta=betas)
def test_beta_clustering_clude_invariants(seed, delta_edges, beta):
    matrices = _sequence(seed, delta_edges, snapshots=5)
    reference = MarkowitzReference()
    clusters = beta_clustering_clude(matrices, beta, reference)
    assert_partition_invariants(clusters, len(matrices))
    checker = MarkowitzReference()
    for cluster in clusters:
        members = [matrices[i] for i in cluster.indices]
        union_matrix = cluster_union_matrix(members)
        union_ordering = markowitz_ordering(union_matrix)
        union_size = symbolic_size_under_ordering(union_matrix, union_ordering)
        for index in cluster.indices:
            best = checker.size_for(index, matrices[index])
            # Algorithm 5's shortcut bound: the union pattern's size (an
            # upper bound on every member's, by Theorem 1) stays within β.
            assert union_size - best <= beta * best
            # ...which implies the member's own quality-loss bound.
            loss = checker.quality_loss(index, union_ordering, matrices[index])
            assert loss <= beta


@pytest.mark.parametrize("alpha", [-0.1, 1.5])
def test_alpha_out_of_range_rejected(alpha, tiny_ems):
    from repro.errors import ClusteringError

    with pytest.raises(ClusteringError):
        alpha_clustering(list(tiny_ems), alpha)
