"""Tests for symbolic decomposition, fill-in patterns and their properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.lu.crout import crout_decompose
from repro.lu.symbolic import (
    fill_in_count,
    fill_in_pattern,
    fill_in_pattern_reference,
    intersection_pattern,
    reorder_pattern,
    symbolic_decomposition,
    symbolic_pattern_size,
    union_pattern,
)
from repro.sparse.pattern import SparsityPattern
from tests.conftest import random_dd_matrix


def chain_pattern(n):
    """A bidirectional chain 0-1-2-...-(n-1) plus the diagonal."""
    indices = {(i, i) for i in range(n)}
    for i in range(n - 1):
        indices.add((i, i + 1))
        indices.add((i + 1, i))
    return SparsityPattern(n, indices)


class TestSymbolicDecomposition:
    def test_chain_produces_no_fill(self):
        """Eliminating a chain in natural order produces no fill-in."""
        pattern = chain_pattern(6)
        assert fill_in_count(pattern) == 0
        assert symbolic_decomposition(pattern) == pattern

    def test_star_centre_first_fills_completely(self):
        """A star eliminated centre-first fills the leaf clique."""
        n = 5
        indices = {(0, i) for i in range(n)} | {(i, 0) for i in range(n)}
        indices |= {(i, i) for i in range(n)}
        pattern = SparsityPattern(n, indices)
        full = symbolic_decomposition(pattern)
        # Eliminating the centre (index 0) first connects all leaves.
        assert len(full) == n * n

    def test_star_centre_last_has_no_fill(self):
        """The same star with the centre eliminated last has no fill."""
        n = 5
        indices = {(n - 1, i) for i in range(n)} | {(i, n - 1) for i in range(n)}
        indices |= {(i, i) for i in range(n)}
        pattern = SparsityPattern(n, indices)
        assert fill_in_count(pattern) == 0

    def test_superset_of_input_with_diagonal(self, rng):
        matrix = random_dd_matrix(15, 50, rng)
        pattern = matrix.pattern()
        full = symbolic_decomposition(pattern)
        assert pattern <= full
        assert all((i, i) in full for i in range(15))

    def test_covers_actual_fill_ins(self, rng):
        """sp(Â) ⊆ s̃p(A): every numeric non-zero of L+U is predicted."""
        for _ in range(5):
            matrix = random_dd_matrix(18, 60, rng)
            predicted = symbolic_decomposition(matrix.pattern())
            factors = crout_decompose(matrix, pattern=predicted)
            assert factors.decomposed_pattern() <= predicted

    def test_matches_reference_implementation(self, rng):
        """The elimination-based fill pattern equals the path-based definition (Eq. 2)."""
        for _ in range(5):
            matrix = random_dd_matrix(12, 35, rng)
            pattern = matrix.pattern().with_full_diagonal()
            fast = fill_in_pattern(pattern)
            slow = fill_in_pattern_reference(pattern)
            assert fast == slow

    def test_pattern_size_helper(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        assert symbolic_pattern_size(matrix.pattern()) == len(
            symbolic_decomposition(matrix.pattern())
        )


class TestMonotonicity:
    """Lemma 1: sp(A) ⊆ sp(B) implies s̃p(A) ⊆ s̃p(B)."""

    @given(
        base=st.frozensets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40),
        extra=st.frozensets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_lemma_1(self, base, extra):
        smaller = SparsityPattern(10, base)
        larger = SparsityPattern(10, base | extra)
        assert symbolic_decomposition(smaller) <= symbolic_decomposition(larger)

    def test_union_covers_members(self, rng):
        """Theorem 1: s̃p(A_∪) is a USSP — it covers every member's s̃p."""
        members = [random_dd_matrix(12, 40, rng) for _ in range(4)]
        union = union_pattern([m.pattern() for m in members])
        universal = symbolic_decomposition(union)
        for member in members:
            assert symbolic_decomposition(member.pattern()) <= universal


class TestReorderPattern:
    def test_reorder_matches_matrix_permutation(self, rng):
        matrix = random_dd_matrix(8, 25, rng)
        order = list(rng.permutation(8))
        reordered_pattern = reorder_pattern(matrix.pattern(), order, order)
        reordered_matrix = matrix.permuted(order, order)
        assert reordered_pattern == reordered_matrix.pattern()

    def test_reorder_wrong_length(self):
        with pytest.raises(DimensionError):
            reorder_pattern(SparsityPattern(3), [0, 1], [0, 1, 2])


class TestPatternAggregates:
    def test_union_and_intersection_pattern(self):
        a = SparsityPattern(3, [(0, 1)])
        b = SparsityPattern(3, [(0, 1), (1, 2)])
        assert union_pattern([a, b]).indices == frozenset({(0, 1), (1, 2)})
        assert intersection_pattern([a, b]).indices == frozenset({(0, 1)})

    def test_empty_aggregate_rejected(self):
        with pytest.raises(DimensionError):
            union_pattern([])
        with pytest.raises(DimensionError):
            intersection_pattern([])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(DimensionError):
            union_pattern([SparsityPattern(3), SparsityPattern(4)])
