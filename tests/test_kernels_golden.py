"""Golden-oracle tests: every kernel against its dense NumPy equivalent.

Each vectorized primitive in :mod:`repro.sparse.kernels` (and its
:class:`~repro.sparse.csr.SparseMatrix` / LU-factor wrappers) is checked
against the obvious dense oracle — ``A_dense @ x``, fancy-indexed gathers,
``np.linalg.solve`` — on randomized matrices across sizes 1–64, including
matrices with empty rows and the ``n = 0`` edge case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lu.crout import crout_decompose, crout_decompose_into
from repro.lu.solve import (
    backward_substitution,
    backward_substitution_many,
    forward_substitution,
    forward_substitution_many,
    solve_factored,
    solve_factored_many,
)
from repro.lu.static_structure import StaticLUFactors
from repro.lu.symbolic import symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from repro.sparse import kernels

SIZES = [1, 2, 3, 5, 8, 13, 21, 34, 64]


def random_sparse(n: int, rng: np.random.Generator, density: float = 0.25) -> SparseMatrix:
    """A random sparse matrix that usually contains empty rows and columns."""
    dense = rng.standard_normal((n, n))
    dense[rng.random((n, n)) > density] = 0.0
    if n >= 3:
        dense[rng.integers(0, n)] = 0.0  # force at least one empty row
        dense[:, rng.integers(0, n)] = 0.0  # ... and one empty column
    return SparseMatrix.from_dense(dense)


def random_dd(n: int, rng: np.random.Generator) -> SparseMatrix:
    """A strictly diagonally dominant random matrix (safe to decompose)."""
    dense = rng.standard_normal((n, n)) * 0.3
    dense[rng.random((n, n)) > 0.4] = 0.0
    np.fill_diagonal(dense, 0.0)
    for i in range(n):
        dense[i, i] = 1.0 + np.sum(np.abs(dense[i]))
    return SparseMatrix.from_dense(dense)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(777)


class TestProductsGolden:
    @pytest.mark.parametrize("n", SIZES)
    def test_matvec(self, n, rng):
        matrix = random_sparse(n, rng)
        x = rng.standard_normal(n)
        assert np.allclose(matrix.matvec(x), matrix.to_dense() @ x)

    @pytest.mark.parametrize("n", SIZES)
    def test_rmatvec(self, n, rng):
        matrix = random_sparse(n, rng)
        x = rng.standard_normal(n)
        assert np.allclose(matrix.rmatvec(x), matrix.to_dense().T @ x)

    @pytest.mark.parametrize("n", SIZES)
    def test_matmat(self, n, rng):
        matrix = random_sparse(n, rng)
        block = rng.standard_normal((n, 5))
        assert np.allclose(matrix.matmat(block), matrix.to_dense() @ block)

    def test_matmat_columns_bitwise_match_matvec(self, rng):
        matrix = random_sparse(16, rng)
        block = rng.standard_normal((16, 4))
        product = matrix.matmat(block)
        for column in range(4):
            assert product[:, column].tobytes() == matrix.matvec(block[:, column]).tobytes()

    def test_matvec_empty_rows_give_zero(self, rng):
        matrix = SparseMatrix(4, {(1, 2): 3.0})
        result = matrix.matvec([1.0, 1.0, 1.0, 1.0])
        assert result.tolist() == [0.0, 3.0, 0.0, 0.0]


def dict_style_product(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """The seed's hand-rolled dict-of-dicts product (the spgemm oracle)."""
    entries = {}
    b_rows = {i: dict(b.row(i)) for i in range(b.n)}
    for i, k, value_ik in a.items():
        row_k = b_rows.get(k)
        if not row_k:
            continue
        for j, value_kj in row_k.items():
            key = (i, j)
            entries[key] = entries.get(key, 0.0) + value_ik * value_kj
    return SparseMatrix(a.n, entries)


class TestSpgemmGolden:
    @pytest.mark.parametrize("n", SIZES)
    def test_spgemm_matches_dense_product(self, n, rng):
        a = random_sparse(n, rng)
        b = random_sparse(n, rng)
        assert np.allclose(a.multiply(b).to_dense(), a.to_dense() @ b.to_dense())

    @pytest.mark.parametrize("n", SIZES)
    def test_spgemm_matches_dict_product(self, n, rng):
        # Same structure as the seed's dict-of-dicts product; values agree
        # up to the rounding of the pairwise reduction (sequential vs
        # pairwise summation of the same contribution order).
        a = random_sparse(n, rng)
        b = random_sparse(n, rng)
        product = a.multiply(b)
        oracle = dict_style_product(a, b)
        assert product.indptr.tobytes() == oracle.indptr.tobytes()
        assert product.indices.tobytes() == oracle.indices.tobytes()
        assert np.allclose(product.data, oracle.data, rtol=1e-13, atol=1e-13)

    @pytest.mark.parametrize("n", SIZES)
    def test_spgemm_deterministic(self, n, rng):
        a = random_sparse(n, rng)
        b = random_sparse(n, rng)
        first = a.multiply(b)
        second = a.multiply(b)
        assert first.data.tobytes() == second.data.tobytes()
        assert first.indices.tobytes() == second.indices.tobytes()

    def test_spgemm_matmul_operator(self, rng):
        a = random_sparse(8, rng)
        b = random_sparse(8, rng)
        assert (a @ b) == a.multiply(b)

    def test_spgemm_empty_and_identity(self):
        zero = SparseMatrix.zeros(5)
        eye = SparseMatrix.identity(5)
        some = SparseMatrix(5, {(0, 1): 2.0, (3, 4): -1.5})
        assert (zero @ some).nnz == 0
        assert (some @ zero).nnz == 0
        assert (eye @ some) == some
        assert (some @ eye) == some
        empty = SparseMatrix.zeros(0)
        assert (empty @ empty).n == 0

    def test_spgemm_cancellation_drops_exact_zeros(self):
        # (row 0 of a) @ b accumulates 1*1 + 1*(-1) = 0 at (0, 0).
        a = SparseMatrix(2, {(0, 0): 1.0, (0, 1): 1.0})
        b = SparseMatrix(2, {(0, 0): 1.0, (1, 0): -1.0})
        assert (a @ b).nnz == 0


class TestDeltaGolden:
    @pytest.mark.parametrize("n", SIZES)
    def test_delta_matches_dense_difference(self, n, rng):
        a = random_sparse(n, rng)
        b = random_sparse(n, rng)
        delta = a.delta_entries(b)
        dense_diff = b.to_dense() - a.to_dense()
        expected_keys = {
            (int(i), int(j)) for i, j in zip(*np.nonzero(dense_diff))
        }
        assert set(delta) == expected_keys
        for (i, j), value in delta.items():
            assert value == dense_diff[i, j]

    def test_delta_tolerance_filters_small_changes(self):
        a = SparseMatrix(2, {(0, 0): 1.0, (0, 1): 5.0})
        b = SparseMatrix(2, {(0, 0): 1.0 + 1e-9, (0, 1): 6.0})
        assert a.delta_entries(b, tolerance=1e-6) == {(0, 1): 1.0}

    def test_delta_is_row_major_ordered(self, rng):
        a = random_sparse(12, rng)
        b = random_sparse(12, rng)
        keys = list(a.delta_entries(b))
        assert keys == sorted(keys)


class TestPermuteGolden:
    @pytest.mark.parametrize("n", SIZES)
    def test_permuted_matches_dense_gather(self, n, rng):
        matrix = random_sparse(n, rng)
        row_perm = rng.permutation(n)
        col_perm = rng.permutation(n)
        permuted = matrix.permuted(list(row_perm), list(col_perm))
        expected = matrix.to_dense()[np.ix_(row_perm, col_perm)]
        assert np.array_equal(permuted.to_dense(), expected)

    @pytest.mark.parametrize("n", SIZES)
    def test_transpose_matches_dense(self, n, rng):
        matrix = random_sparse(n, rng)
        assert np.array_equal(matrix.transpose().to_dense(), matrix.to_dense().T)

    def test_permuted_rejects_non_permutation(self):
        matrix = SparseMatrix.identity(3)
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            matrix.permuted([0, 0, 1], [0, 1, 2])


class TestTriangularSolvesGolden:
    @pytest.mark.parametrize("n", SIZES)
    def test_forward_backward_against_linalg(self, n, rng):
        matrix = random_dd(n, rng)
        factors = crout_decompose(matrix)
        lower = factors.l_dense()
        upper = factors.u_dense()
        b = rng.standard_normal(n)
        y = forward_substitution(factors, b)
        assert np.allclose(y, np.linalg.solve(lower, b))
        x = backward_substitution(factors, y)
        assert np.allclose(x, np.linalg.solve(upper, y))
        assert np.allclose(solve_factored(factors, b), np.linalg.solve(lower @ upper, b))

    @pytest.mark.parametrize("n", SIZES)
    def test_batched_solves_against_linalg(self, n, rng):
        matrix = random_dd(n, rng)
        factors = crout_decompose(matrix)
        block = rng.standard_normal((n, 6))
        dense = matrix.to_dense()
        assert np.allclose(
            forward_substitution_many(factors, block),
            np.linalg.solve(factors.l_dense(), block),
        )
        assert np.allclose(solve_factored_many(factors, block), np.linalg.solve(dense, block))

    @pytest.mark.parametrize("n", SIZES)
    def test_static_structure_solves_match(self, n, rng):
        matrix = random_dd(n, rng)
        pattern = symbolic_decomposition(matrix.pattern())
        static = StaticLUFactors(pattern)
        crout_decompose_into(matrix, static, pattern=pattern)
        block = rng.standard_normal((n, 3))
        assert np.allclose(
            static.solve_many(block), np.linalg.solve(matrix.to_dense(), block)
        )
        assert np.allclose(
            backward_substitution_many(static, block),
            np.linalg.solve(static.u_dense(), block),
        )


class TestEmptyMatrixEdgeCases:
    def test_n_zero_products(self):
        matrix = SparseMatrix.zeros(0)
        assert matrix.matvec([]).shape == (0,)
        assert matrix.rmatvec([]).shape == (0,)
        assert matrix.matmat(np.zeros((0, 3))).shape == (0, 3)

    def test_n_zero_delta_and_permute(self):
        matrix = SparseMatrix.zeros(0)
        assert matrix.delta_entries(matrix) == {}
        assert matrix.permuted([], []).nnz == 0
        assert matrix.transpose().nnz == 0

    def test_n_zero_solves(self):
        factors = crout_decompose(SparseMatrix.zeros(0))
        assert solve_factored(factors, []).shape == (0,)
        assert solve_factored_many(factors, np.zeros((0, 4))).shape == (0, 4)

    def test_n_zero_queries(self):
        matrix = SparseMatrix.zeros(0)
        assert matrix.nnz == 0
        assert list(matrix.items()) == []
        assert matrix.is_diagonally_dominant()
        assert matrix.is_symmetric()


class TestKernelArrayLevel:
    """Drive the raw-array kernels directly (no SparseMatrix wrapper)."""

    def test_csr_from_coo_sums_duplicates_and_drops_zeros(self):
        indptr, indices, data = kernels.csr_from_coo(
            3,
            np.array([0, 0, 1, 1]),
            np.array([1, 1, 2, 2]),
            np.array([1.5, 2.5, 1.0, -1.0]),
        )
        assert indptr.tolist() == [0, 1, 1, 1]
        assert indices.tolist() == [1]
        assert data.tolist() == [4.0]

    def test_csr_aligned_values(self):
        a = SparseMatrix(2, {(0, 0): 1.0, (0, 1): 2.0})
        b = SparseMatrix(2, {(0, 1): 3.0, (1, 1): 4.0})
        rows, cols, va, vb = kernels.csr_aligned_values(2, a.csr_arrays(), b.csr_arrays())
        aligned = {
            (int(i), int(j)): (x, y)
            for i, j, x, y in zip(rows, cols, va, vb)
        }
        assert aligned == {(0, 0): (1.0, 0.0), (0, 1): (2.0, 3.0), (1, 1): (0.0, 4.0)}

    def test_expand_row_ids(self):
        matrix = SparseMatrix(3, {(0, 1): 1.0, (2, 0): 2.0, (2, 2): 3.0})
        assert kernels.expand_row_ids(3, matrix.indptr).tolist() == [0, 2, 2]
