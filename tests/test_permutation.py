"""Tests for permutations and orderings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, OrderingError
from repro.sparse.permutation import Ordering, Permutation, natural_ordering, random_ordering
from tests.conftest import random_dd_matrix


class TestPermutation:
    def test_identity(self):
        p = Permutation.identity(4)
        assert p.order == [0, 1, 2, 3]
        assert len(p) == 4

    def test_rejects_non_permutation(self):
        with pytest.raises(OrderingError):
            Permutation([0, 0, 1])
        with pytest.raises(OrderingError):
            Permutation([0, 2])

    def test_inverse(self):
        p = Permutation([2, 0, 1])
        inverse = p.inverse()
        assert inverse.compose(p) == Permutation.identity(3)
        assert p.compose(inverse) == Permutation.identity(3)

    def test_compose_sizes_must_match(self):
        with pytest.raises(OrderingError):
            Permutation([0, 1]).compose(Permutation([0, 1, 2]))

    def test_apply_to_vector(self):
        p = Permutation([2, 0, 1])
        assert p.apply_to_vector([10.0, 20.0, 30.0]).tolist() == [30.0, 10.0, 20.0]

    def test_apply_to_vector_wrong_length(self):
        with pytest.raises(DimensionError):
            Permutation([1, 0]).apply_to_vector([1.0, 2.0, 3.0])

    def test_to_matrix(self):
        p = Permutation([1, 0])
        dense = p.to_matrix().to_dense()
        assert np.allclose(dense, [[0, 1], [1, 0]])


class TestOrdering:
    def test_identity_and_symmetric(self):
        identity = Ordering.identity(3)
        assert identity.is_symmetric()
        symmetric = Ordering.symmetric([2, 0, 1])
        assert symmetric.row == symmetric.column

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(OrderingError):
            Ordering(Permutation([0, 1]), Permutation([0, 1, 2]))

    def test_apply_matches_permutation_matrices(self, rng):
        matrix = random_dd_matrix(6, 18, rng)
        ordering = random_ordering(6, rng)
        reordered = ordering.apply(matrix)
        p = ordering.row.to_matrix().to_dense()
        q = ordering.column.to_matrix().to_dense().T
        # A^O = P A Q where P[k, row[k]] = 1 and Q[col[k], k]^T... build directly:
        expected = np.zeros((6, 6))
        for r in range(6):
            for c in range(6):
                expected[r, c] = matrix.get(ordering.row[r], ordering.column[c])
        assert np.allclose(reordered.to_dense(), expected)
        assert p.shape == q.shape

    def test_apply_dimension_mismatch(self, rng):
        with pytest.raises(DimensionError):
            Ordering.identity(4).apply(random_dd_matrix(5, 10, rng))

    def test_rhs_solution_round_trip(self, rng):
        """Solving the reordered system must give the original solution."""
        matrix = random_dd_matrix(8, 30, rng)
        ordering = random_ordering(8, rng)
        x = rng.random(8)
        b = matrix.matvec(x)
        reordered = ordering.apply(matrix)
        b_prime = ordering.permute_rhs(b)
        x_prime = np.linalg.solve(reordered.to_dense(), b_prime)
        recovered = ordering.unpermute_solution(x_prime)
        assert np.allclose(recovered, x, atol=1e-9)

    def test_map_entries(self, rng):
        matrix = random_dd_matrix(6, 15, rng)
        ordering = random_ordering(6, rng)
        mapped = ordering.map_entries(matrix.entries())
        reordered = ordering.apply(matrix)
        assert mapped == reordered.entries()

    def test_natural_ordering_alias(self):
        assert natural_ordering(5) == Ordering.identity(5)

    def test_from_sequences(self):
        ordering = Ordering.from_sequences([1, 0, 2], [2, 1, 0])
        assert ordering.row.order == [1, 0, 2]
        assert ordering.column.order == [2, 1, 0]


@given(order=st.permutations(list(range(7))))
@settings(max_examples=50, deadline=None)
def test_permutation_inverse_property(order):
    p = Permutation(list(order))
    assert p.inverse().inverse() == p
    assert p.compose(p.inverse()) == Permutation.identity(7)


@given(order=st.permutations(list(range(6))), data=st.data())
@settings(max_examples=40, deadline=None)
def test_unpermute_is_inverse_of_permute_columns(order, data):
    ordering = Ordering.symmetric(list(order))
    values = data.draw(
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=6, max_size=6)
    )
    x = np.array(values)
    # permute_rhs uses the row permutation; unpermute_solution uses the column
    # permutation.  For a symmetric ordering they must be mutually inverse.
    assert np.allclose(ordering.unpermute_solution(ordering.permute_rhs(x)), x)
