"""Tests for cluster similarity machinery and the clustering algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    alpha_clustering,
    beta_clustering_cinc,
    beta_clustering_clude,
    clusters_cover_sequence,
    MatrixCluster,
)
from repro.core.quality import MarkowitzReference, quality_loss
from repro.core.similarity import (
    IncrementalClusterBound,
    cluster_compactness,
    cluster_intersection_pattern,
    cluster_union_matrix,
    cluster_union_pattern,
    is_alpha_bounded,
    successive_similarities,
)
from repro.errors import ClusteringError, DimensionError
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix
from tests.conftest import perturb_matrix, random_dd_matrix


def matrix_chain(rng, count=5, n=20, churn=3):
    """A chain of gradually evolving diagonally dominant matrices."""
    matrices = [random_dd_matrix(n, 3 * n, rng)]
    for _ in range(count - 1):
        matrices.append(perturb_matrix(matrices[-1], changes=churn, rng=rng))
    return matrices


class TestBoundingMatrices:
    def test_property_1_sandwich(self, rng):
        """Property 1: sp(A_∩) ⊆ sp(A_i) ⊆ sp(A_∪) for every member."""
        matrices = matrix_chain(rng)
        intersection = cluster_intersection_pattern(matrices)
        union = cluster_union_pattern(matrices)
        for matrix in matrices:
            assert intersection <= matrix.pattern()
            assert matrix.pattern() <= union

    def test_union_matrix_is_indicator(self, rng):
        matrices = matrix_chain(rng, count=3)
        union_matrix = cluster_union_matrix(matrices)
        assert union_matrix.pattern() == cluster_union_pattern(matrices)
        assert all(value == 1.0 for _, _, value in union_matrix.items())

    def test_compactness_bounds(self, rng):
        matrices = matrix_chain(rng)
        compactness = cluster_compactness(matrices)
        assert 0.0 <= compactness <= 1.0
        assert cluster_compactness([matrices[0]]) == pytest.approx(1.0)

    def test_alpha_boundedness(self, rng):
        matrices = matrix_chain(rng, churn=1)
        assert is_alpha_bounded(matrices, 0.0)
        assert is_alpha_bounded([matrices[0]], 1.0)
        with pytest.raises(ClusteringError):
            is_alpha_bounded(matrices, 1.5)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusteringError):
            cluster_union_pattern([])

    def test_mixed_dimensions_rejected(self, rng):
        with pytest.raises(DimensionError):
            cluster_union_pattern([random_dd_matrix(5, 10, rng), random_dd_matrix(6, 10, rng)])

    def test_successive_similarities(self, rng):
        matrices = matrix_chain(rng, count=4, churn=1)
        sims = successive_similarities(matrices)
        assert len(sims) == 3
        assert all(0.0 <= s <= 1.0 for s in sims)


class TestIncrementalClusterBound:
    def test_matches_batch_computation(self, rng):
        matrices = matrix_chain(rng, count=6)
        bound = IncrementalClusterBound(matrices[0])
        for index in range(1, len(matrices)):
            predicted = bound.compactness_with(matrices[index])
            bound.add(matrices[index])
            batch = cluster_compactness(matrices[: index + 1])
            assert predicted == pytest.approx(batch)
            assert bound.compactness() == pytest.approx(batch)
        assert bound.size == len(matrices)

    def test_dimension_check(self, rng):
        bound = IncrementalClusterBound(random_dd_matrix(5, 12, rng))
        with pytest.raises(DimensionError):
            bound.add(random_dd_matrix(6, 12, rng))


class TestMatrixCluster:
    def test_properties(self):
        cluster = MatrixCluster(2, 6)
        assert cluster.size == 4
        assert list(cluster.indices) == [2, 3, 4, 5]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusteringError):
            MatrixCluster(3, 3)

    def test_cover_check(self):
        clusters = [MatrixCluster(0, 2), MatrixCluster(2, 5)]
        assert clusters_cover_sequence(clusters, 5)
        assert not clusters_cover_sequence(clusters, 6)
        assert not clusters_cover_sequence(list(reversed(clusters)), 5)


class TestAlphaClustering:
    def test_partitions_the_sequence(self, rng):
        matrices = matrix_chain(rng, count=8, churn=4)
        clusters = alpha_clustering(matrices, alpha=0.9)
        assert clusters_cover_sequence(clusters, len(matrices))

    def test_every_cluster_is_alpha_bounded(self, rng):
        matrices = matrix_chain(rng, count=8, churn=4)
        alpha = 0.9
        clusters = alpha_clustering(matrices, alpha=alpha)
        for cluster in clusters:
            members = [matrices[index] for index in cluster.indices]
            assert is_alpha_bounded(members, alpha)

    def test_alpha_one_gives_singletons_for_changing_matrices(self, rng):
        matrices = matrix_chain(rng, count=5, churn=4)
        clusters = alpha_clustering(matrices, alpha=1.0)
        # With strictly changing sparsity patterns every cluster is a singleton.
        assert all(cluster.size == 1 for cluster in clusters)

    def test_alpha_zero_gives_one_cluster(self, rng):
        matrices = matrix_chain(rng, count=5, churn=4)
        clusters = alpha_clustering(matrices, alpha=0.0)
        assert len(clusters) == 1

    def test_identical_matrices_form_one_cluster(self, rng):
        matrix = random_dd_matrix(15, 45, rng)
        clusters = alpha_clustering([matrix] * 6, alpha=1.0)
        assert len(clusters) == 1

    def test_monotone_in_alpha(self, rng):
        matrices = matrix_chain(rng, count=10, churn=3)
        previous_count = 0
        for alpha in (0.85, 0.92, 0.97, 1.0):
            count = len(alpha_clustering(matrices, alpha=alpha))
            assert count >= previous_count
            previous_count = count

    def test_invalid_inputs(self, rng):
        with pytest.raises(ClusteringError):
            alpha_clustering([], 0.9)
        with pytest.raises(ClusteringError):
            alpha_clustering([random_dd_matrix(5, 10, rng)], 1.5)


class TestBetaClustering:
    def symmetric_chain(self, rng, count=6, n=18, churn=2):
        base = np.zeros((n, n))
        for _ in range(2 * n):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                base[i, j] = base[j, i] = -0.3
        matrices = []
        for _ in range(count):
            dense = base.copy()
            for i in range(n):
                dense[i, i] = 1.0 + np.sum(np.abs(dense[i]))
            matrices.append(SparseMatrix.from_dense(dense))
            # add a couple of symmetric entries for the next snapshot
            for _ in range(churn):
                i, j = rng.integers(0, n, size=2)
                if i != j:
                    base[i, j] = base[j, i] = -0.3
        return matrices

    def test_cinc_version_respects_constraint(self, rng):
        matrices = self.symmetric_chain(rng)
        beta = 0.15
        reference = MarkowitzReference(symmetric=True)
        clusters = beta_clustering_cinc(matrices, beta, reference)
        assert clusters_cover_sequence(clusters, len(matrices))
        for cluster in clusters:
            ordering = markowitz_ordering(matrices[cluster.start])
            for index in cluster.indices:
                loss = quality_loss(
                    ordering, matrices[index],
                    reference_size=reference.size_for(index, matrices[index]),
                )
                assert loss <= beta + 1e-9

    def test_clude_version_respects_constraint(self, rng):
        matrices = self.symmetric_chain(rng)
        beta = 0.15
        reference = MarkowitzReference(symmetric=True)
        clusters = beta_clustering_clude(matrices, beta, reference)
        assert clusters_cover_sequence(clusters, len(matrices))
        for cluster in clusters:
            members = [matrices[index] for index in cluster.indices]
            ordering = markowitz_ordering(cluster_union_matrix(members))
            for index in cluster.indices:
                loss = quality_loss(
                    ordering, matrices[index],
                    reference_size=reference.size_for(index, matrices[index]),
                )
                assert loss <= beta + 1e-9

    def test_beta_zero_forces_tight_clusters(self, rng):
        matrices = self.symmetric_chain(rng, churn=3)
        zero_clusters = beta_clustering_cinc(matrices, 0.0)
        loose_clusters = beta_clustering_cinc(matrices, 0.5)
        assert len(zero_clusters) >= len(loose_clusters)

    def test_negative_beta_rejected(self, rng):
        with pytest.raises(ClusteringError):
            beta_clustering_cinc(self.symmetric_chain(rng, count=2), -0.1)
        with pytest.raises(ClusteringError):
            beta_clustering_clude(self.symmetric_chain(rng, count=2), -0.1)


@given(alpha=st.floats(0.0, 1.0), seed=st.integers(0, 2000))
@settings(max_examples=25, deadline=None)
def test_alpha_clustering_always_partitions(alpha, seed):
    rng = np.random.default_rng(seed)
    matrices = matrix_chain(rng, count=int(rng.integers(2, 7)), n=12, churn=int(rng.integers(1, 5)))
    clusters = alpha_clustering(matrices, alpha)
    assert clusters_cover_sequence(clusters, len(matrices))
