"""MeasureServer(shards=N): sharded serving equals serial serving."""

from __future__ import annotations

import pytest

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.query import QueryPlanner
from repro.serve import MeasureServer


def _snapshots():
    base = [(i, (i + 1) % 12) for i in range(12)] + [(0, 6), (3, 9), (5, 11)]
    first = GraphSnapshot(12, base)
    second = GraphSnapshot(12, base[:-1] + [(2, 8), (7, 1)])
    return first, second


def _serve_stream(server):
    """One fixed request stream: queries, a streamed update, more queries."""
    first, second = _snapshots()
    futures = [
        server.submit_measure("rwr", first, start_node=2),
        server.submit_measure("ppr", first, seeds=(1, 4, 7)),
        server.submit_measure("pagerank", first),
        server.submit_measure("hitting_time", first, target=5),
    ]
    server.admit_update(first).result(timeout=120)
    server.admit_update(second).result(timeout=120)
    futures += [
        server.submit_measure("rwr", second, start_node=2),
        server.submit_measure("pagerank", None),  # head-deferred → second
        server.submit_measure("salsa_hub", second),
    ]
    return [future.result(timeout=120).tobytes() for future in futures]


# --------------------------------------------------------------------- #
# Constructor validation (no worker pool is ever spawned)
# --------------------------------------------------------------------- #
def test_explicit_planner_conflicts_with_shards():
    planner = QueryPlanner()
    with pytest.raises(MeasureError):
        MeasureServer(planner, shards=2)


def test_sharded_server_rejects_instance_arguments():
    from repro.exec import ParallelExecutor
    from repro.query import FactorCache

    with pytest.raises(MeasureError):
        MeasureServer(shards=2, executor=ParallelExecutor(workers=2))
    with pytest.raises(MeasureError):
        MeasureServer(shards=2, cache=FactorCache())
    with pytest.raises(MeasureError):
        MeasureServer(shards=0)


# --------------------------------------------------------------------- #
# Differential + lifecycle (spawns worker pools → slow)
# --------------------------------------------------------------------- #
@pytest.mark.slow
def test_sharded_server_answers_bitwise_equal_to_serial():
    serial_server = MeasureServer(auto_refresh=True)
    try:
        reference = _serve_stream(serial_server)
    finally:
        serial_server.close()

    server = MeasureServer(shards=2, auto_refresh=True)
    try:
        assert _serve_stream(server) == reference
        info = server.planner.dispatch_info()
        assert info["member_bytes_shipped"] == 0
        names = server.planner.arena.segment_names()
        assert len(names) == 2  # both snapshots shipped exactly once
    finally:
        server.close()
    from repro.shard.arena import leaked_segments

    assert leaked_segments(names) == ()


@pytest.mark.slow
def test_sharded_server_close_without_drain_leaks_nothing():
    first, _ = _snapshots()
    server = MeasureServer(shards=2)
    server.submit_measure("pagerank", first).result(timeout=120)
    names = server.planner.arena.segment_names()
    assert names
    planner = server.planner
    server.close(drain=False)
    from repro.shard.arena import leaked_segments

    assert leaked_segments(names) == ()
    with pytest.raises(MeasureError):
        planner.run([])
