"""Property tests for the batched multi-right-hand-side solve path.

The contract under test: ``solve_many(B)`` equals column-by-column
``solve(b)`` — *bitwise*, not just approximately — for all four LU engines
(BF, INC, CINC, CLUDE) on a small EMS, and the batched and scalar measure
series paths produce bitwise-identical PageRank/RWR time series.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import EMSSolver, available_algorithms
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.lu.crout import crout_decompose
from repro.lu.solve import solve_factored
from repro.measures.pagerank import pagerank_rhs, pagerank_series
from repro.measures.rwr import rwr_scores, rwr_scores_many
from repro.measures.timeseries import MeasureSeries
from repro.measures.base import SnapshotMeasureSolver
from tests.conftest import random_dd_matrix

ALGORITHMS = available_algorithms()


@pytest.fixture(scope="module")
def small_egs():
    config = SyntheticEGSConfig(
        nodes=30, edge_pool_size=240, average_degree=4, delta_edges=8,
        snapshots=4, seed=21,
    )
    return generate_synthetic_egs(config)


@pytest.fixture(scope="module")
def small_ems(small_egs):
    from repro.graphs.ems import EvolvingMatrixSequence
    from repro.graphs.matrixkind import MatrixKind

    return EvolvingMatrixSequence.from_graphs(small_egs, kind=MatrixKind.RANDOM_WALK)


class TestSolveManyEqualsColumnwiseSolve:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_engines_all_snapshots(self, algorithm, small_ems):
        solver = EMSSolver(small_ems, algorithm=algorithm, alpha=0.9)
        rng = np.random.default_rng(5)
        n = small_ems.n
        block = rng.standard_normal((n, 7))
        for index in range(len(small_ems)):
            batched = solver.solve_many(index, block)
            assert batched.shape == (n, 7)
            for column in range(block.shape[1]):
                scalar = solver.solve(index, block[:, column])
                assert batched[:, column].tobytes() == scalar.tobytes()

    def test_factors_level_solve_many(self, rng):
        matrix = random_dd_matrix(20, 70, rng)
        factors = crout_decompose(matrix)
        block = rng.standard_normal((20, 64))
        batched = factors.solve_many(block)
        for column in range(64):
            scalar = solve_factored(factors, block[:, column])
            assert batched[:, column].tobytes() == scalar.tobytes()
        # And the answers are actually solutions.
        assert np.allclose(matrix.to_dense() @ batched, block)

    @given(seed=st.integers(0, 2**32 - 1), k=st.integers(1, 9))
    @settings(max_examples=25, deadline=None)
    def test_batched_equals_scalar_property(self, seed, k):
        rng = np.random.default_rng(seed)
        matrix = random_dd_matrix(12, 40, rng)
        factors = crout_decompose(matrix)
        block = rng.standard_normal((12, k))
        batched = factors.solve_many(block)
        for column in range(k):
            scalar = solve_factored(factors, block[:, column])
            assert batched[:, column].tobytes() == scalar.tobytes()


class TestBatchedSeriesBitwiseIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_pagerank_series_scalar_vs_batched(self, algorithm, small_ems):
        solver = EMSSolver(small_ems, algorithm=algorithm, alpha=0.9)
        rhs = pagerank_rhs(small_ems.n)
        scalar_series = solver.solve_series(rhs)
        batched_series = solver.solve_series_batched(rhs[:, None])[:, :, 0]
        assert scalar_series.tobytes() == batched_series.tobytes()

    def test_pagerank_series_function_matches_direct_solves(self, small_egs):
        nodes = [0, 3, 7]
        series = pagerank_series(small_egs, nodes, algorithm="CLUDE", alpha=0.9)
        from repro.graphs.ems import EvolvingMatrixSequence
        from repro.graphs.matrixkind import MatrixKind

        ems = EvolvingMatrixSequence.from_graphs(small_egs, kind=MatrixKind.RANDOM_WALK)
        solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.9)
        expected = solver.solve_series(pagerank_rhs(small_egs.n))[:, nodes]
        assert series.tobytes() == expected.tobytes()

    def test_measure_series_rwr_many_bitwise(self, small_egs):
        series = MeasureSeries(small_egs, algorithm="CLUDE", alpha=0.9)
        starts = [1, 4, 9]
        batched = series.rwr_many(starts)
        assert batched.shape == (len(small_egs), small_egs.n, len(starts))
        for column, start in enumerate(starts):
            scalar = series.rwr(start)
            assert batched[:, :, column].tobytes() == scalar.tobytes()

    def test_measure_series_ppr_many_bitwise(self, small_egs):
        series = MeasureSeries(small_egs, algorithm="CINC", alpha=0.9)
        seed_sets = [[0, 2], [5], [7, 8, 9]]
        batched = series.ppr_many(seed_sets)
        for column, seeds in enumerate(seed_sets):
            scalar = series.ppr(seeds)
            assert batched[:, :, column].tobytes() == scalar.tobytes()


class TestSnapshotMeasureBatch:
    def test_rwr_scores_many_bitwise(self, tiny_graph):
        solver = SnapshotMeasureSolver(tiny_graph)
        starts = [0, 2, 5]
        batched = rwr_scores_many(tiny_graph, starts, solver=solver)
        for column, start in enumerate(starts):
            scalar = rwr_scores(tiny_graph, start, solver=solver)
            assert batched[:, column].tobytes() == scalar.tobytes()

    def test_rwr_scores_many_are_distributions(self, tiny_graph):
        batched = rwr_scores_many(tiny_graph, [0, 1, 2])
        # RWR scores over a strongly-connected component sum to ~1.
        assert np.all(batched >= 0.0)
        assert np.allclose(batched.sum(axis=0), 1.0, atol=1e-6)


class TestSolveManyValidation:
    def test_wrong_block_shape_rejected(self, rng):
        from repro.errors import DimensionError

        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        with pytest.raises(DimensionError):
            factors.solve_many(np.zeros((7, 3)))
        with pytest.raises(DimensionError):
            factors.solve_many(np.zeros(10))

    def test_zero_width_block(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        result = factors.solve_many(np.zeros((10, 0)))
        assert result.shape == (10, 0)
