"""Differential suite: parallel execution is bitwise-identical to serial.

For every algorithm (BF, INC, CINC, CLUDE, plus the QC drivers) and several
generated EMS workloads, decomposing with a process-pool executor at 1, 2
and 4 workers must reproduce the serial output *bitwise*: identical L/U
factor entries (exact float equality, no tolerance), identical orderings,
identical fill sizes, cluster assignments, structural-op counts and
quality-loss values.  This is the same verification contract PR 1
established for batched vs. scalar solves, extended across the process
boundary: the parallel engine re-schedules the exact same per-unit routines,
and pickling float64 values is value-exact, so nothing may drift.

The suite spawns many worker pools, so it is marked ``slow`` and runs in a
dedicated CI job with a timeout guard.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.core.problem import LUDEMQCProblem
from repro.core.qc import solve_qc_cinc, solve_qc_clude
from repro.core.quality import MarkowitzReference
from repro.core.result import SequenceResult
from repro.core.solver import EMSSolver
from repro.exec import ParallelExecutor, SerialExecutor, canonical_sequence_state
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs, growing_egs
from repro.graphs.matrixkind import MatrixKind
from repro.sparse.csr import SparseMatrix

pytestmark = pytest.mark.slow

WORKER_COUNTS = [1, 2, 4]

ALGORITHMS = {
    "BF": lambda matrices, executor: decompose_sequence_bf(matrices, executor=executor),
    "INC": lambda matrices, executor: decompose_sequence_inc(matrices, executor=executor),
    "CINC": lambda matrices, executor: decompose_sequence_cinc(
        matrices, alpha=0.9, executor=executor
    ),
    "CLUDE": lambda matrices, executor: decompose_sequence_clude(
        matrices, alpha=0.9, executor=executor
    ),
}


def _directed_workload(seed: int, snapshots: int = 8, delta_edges: int = 12) -> List[SparseMatrix]:
    config = SyntheticEGSConfig(
        nodes=50,
        edge_pool_size=450,
        average_degree=4,
        delta_edges=delta_edges,
        snapshots=snapshots,
        seed=seed,
    )
    egs = generate_synthetic_egs(config)
    return list(EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK))


def _symmetric_workload(seed: int, snapshots: int = 6) -> List[SparseMatrix]:
    egs = growing_egs(
        nodes=36, snapshots=snapshots, initial_edges=72, edges_per_step=8,
        seed=seed, directed=False,
    )
    return list(EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK))


#: Several generated EMS workloads with different cluster structure: the
#: churny directed one fragments into many clusters, the mild one into few,
#: and the symmetric one exercises the SYMMETRIC_WALK matrices.
WORKLOADS = {
    "directed-mild": lambda: _directed_workload(seed=3, delta_edges=8),
    "directed-churny": lambda: _directed_workload(seed=11, delta_edges=28),
    "symmetric-growing": lambda: _symmetric_workload(seed=9),
}

_workload_cache: Dict[str, List[SparseMatrix]] = {}
_serial_cache: Dict[Tuple[str, str], SequenceResult] = {}


def _matrices(workload: str) -> List[SparseMatrix]:
    if workload not in _workload_cache:
        _workload_cache[workload] = WORKLOADS[workload]()
    return _workload_cache[workload]


def _serial_result(algorithm: str, workload: str) -> SequenceResult:
    key = (algorithm, workload)
    if key not in _serial_cache:
        _serial_cache[key] = ALGORITHMS[algorithm](_matrices(workload), None)
    return _serial_cache[key]


# The "everything except timing" reduction shared with the speedup
# benchmark's validity gate — one definition of bitwise equivalence.
canonical_state = canonical_sequence_state


def assert_bitwise_equal(serial: SequenceResult, parallel: SequenceResult, matrices) -> None:
    assert parallel.algorithm == serial.algorithm
    assert parallel.cluster_count == serial.cluster_count
    assert len(parallel) == len(serial)
    assert canonical_state(parallel) == canonical_state(serial)
    # Quality-loss is a pure function of orderings and matrices, evaluated
    # through independent reference caches for each side: must match bitwise.
    serial_losses = serial.quality_losses(matrices, MarkowitzReference())
    parallel_losses = parallel.quality_losses(matrices, MarkowitzReference())
    assert serial_losses == parallel_losses


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_parallel_bitwise_equals_serial(algorithm, workload, workers):
    matrices = _matrices(workload)
    serial = _serial_result(algorithm, workload)
    parallel = ALGORITHMS[algorithm](matrices, ParallelExecutor(workers=workers))
    assert_bitwise_equal(serial, parallel, matrices)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_explicit_serial_executor_equals_default(algorithm):
    matrices = _matrices("directed-mild")
    default = _serial_result(algorithm, "directed-mild")
    explicit = ALGORITHMS[algorithm](matrices, SerialExecutor())
    assert canonical_state(explicit) == canonical_state(default)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("solver", ["cinc", "clude"])
def test_qc_parallel_bitwise_equals_serial(solver, workers):
    matrices = _symmetric_workload(seed=5)
    problem = LUDEMQCProblem(
        ems=EvolvingMatrixSequence(matrices), quality_requirement=0.15
    )
    run = solve_qc_cinc if solver == "cinc" else solve_qc_clude
    serial = run(problem, reference=MarkowitzReference(symmetric=True))
    parallel = run(
        problem,
        reference=MarkowitzReference(symmetric=True),
        executor=ParallelExecutor(workers=workers),
    )
    assert_bitwise_equal(serial, parallel, matrices)


@pytest.mark.parametrize("workers", [4])
def test_solver_facade_solutions_are_bitwise_identical(workers):
    matrices = _matrices("directed-mild")
    ems = EvolvingMatrixSequence(matrices)
    serial_solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.9)
    parallel_solver = EMSSolver(
        ems, algorithm="CLUDE", alpha=0.9, executor=ParallelExecutor(workers=workers)
    )
    b = np.linspace(1.0, 2.0, ems.n)
    serial_series = serial_solver.solve_series(b)
    parallel_series = parallel_solver.solve_series(b)
    assert serial_series.shape == parallel_series.shape
    assert np.array_equal(serial_series, parallel_series)
