"""Differential and property tests for the measure IR and query planner.

Two contracts are pinned here:

* **Bitwise equivalence** — for every registered measure spec, the planner's
  answer to a query is byte-for-byte identical to the legacy per-measure
  entry point, and series-level batches are byte-for-byte identical to the
  established series APIs.
* **Amortization** — a batch costs exactly one factorization per distinct
  ``(snapshot, kind, damping, matrix-params)`` system, never more, asserted
  through the factor-cache counters; every query is answered exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import EMSSolver
from repro.errors import MeasureError
from repro.exec.executors import SerialExecutor
from repro.graphs.generators import growing_egs
from repro.graphs.matrixkind import MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver
from repro.measures.hitting_time import discounted_hitting_scores
from repro.measures.pagerank import pagerank_scores
from repro.measures.ppr import ppr_scores, ppr_scores_many
from repro.measures.rwr import rwr_scores, rwr_scores_many
from repro.measures.salsa import salsa_scores
from repro.measures.timeseries import MeasureSeries
from repro.query import (
    FactorCache,
    MeasureSpec,
    Query,
    QueryBatch,
    QueryPlanner,
    evaluate,
    evaluate_block,
    get_spec,
    make_query,
    register_spec,
    registered_measures,
    system_key,
)
from repro.query.spec import unregister_spec


@pytest.fixture
def second_graph() -> GraphSnapshot:
    """A second small graph so batches can mix snapshots."""
    edges = [(0, 3), (3, 1), (1, 0), (1, 4), (4, 2), (2, 3), (2, 5), (5, 0), (4, 5)]
    return GraphSnapshot(6, edges, directed=True)


class TestSpecRegistry:
    def test_builtin_measures_registered(self):
        names = registered_measures()
        for expected in (
            "rwr", "ppr", "pagerank", "hitting_time", "salsa_authority", "salsa_hub",
        ):
            assert expected in names

    def test_unknown_measure_raises(self):
        with pytest.raises(MeasureError):
            get_spec("betweenness")
        with pytest.raises(MeasureError):
            make_query("betweenness", GraphSnapshot(2, [(0, 1)]))

    def test_duplicate_registration_refused(self):
        with pytest.raises(MeasureError):
            register_spec(get_spec("rwr"))

    def test_register_unregister_custom_spec(self, tiny_graph):
        spec = MeasureSpec(
            name="normalized_rwr_test",
            kind=MatrixKind.RANDOM_WALK,
            build_rhs=get_spec("rwr").build_rhs,
            normalize=True,
        )
        register_spec(spec)
        try:
            scores = evaluate(make_query("normalized_rwr_test", tiny_graph, start_node=0))
            assert np.isclose(float(np.sum(scores)), 1.0)
            raw = rwr_scores(tiny_graph, 0)
            assert np.array_equal(scores, raw / np.sum(raw))
        finally:
            unregister_spec("normalized_rwr_test")
        with pytest.raises(MeasureError):
            unregister_spec("normalized_rwr_test")

    def test_missing_matrix_param_raises(self, tiny_graph):
        with pytest.raises(MeasureError):
            system_key(Query(measure="hitting_time", snapshot=tiny_graph))

    def test_invalid_damping_rejected_at_query_construction(self, tiny_graph):
        with pytest.raises(MeasureError):
            make_query("rwr", tiny_graph, damping=1.5, start_node=0)


class TestDifferentialPlannerVsLegacy:
    """Planner answers == legacy per-measure entry points, bitwise."""

    def test_every_registered_measure_bitwise(self, tiny_graph):
        batch = (
            QueryBatch()
            .add_rwr(tiny_graph, 2)
            .add_ppr(tiny_graph, [1, 4])
            .add_pagerank(tiny_graph)
            .add_hitting_time(tiny_graph, 3)
            .add_salsa_authority(tiny_graph)
            .add_salsa_hub(tiny_graph)
        )
        outcome = QueryPlanner().run(batch)
        authority, hub = salsa_scores(tiny_graph)
        expected = [
            rwr_scores(tiny_graph, 2),
            ppr_scores(tiny_graph, [1, 4]),
            pagerank_scores(tiny_graph),
            discounted_hitting_scores(tiny_graph, 3),
            authority,
            hub,
        ]
        assert len(outcome) == len(expected)
        for answer, reference in zip(outcome, expected):
            assert answer.tobytes() == reference.tobytes()

    def test_mixed_snapshots_and_dampings(self, tiny_graph, second_graph):
        batch = QueryBatch()
        legacy = []
        for snapshot in (tiny_graph, second_graph):
            for damping in (0.85, 0.6):
                for start in (0, 1):
                    batch.add_rwr(snapshot, start, damping=damping)
                    legacy.append(rwr_scores(snapshot, start, damping=damping))
                batch.add_pagerank(snapshot, damping=damping)
                legacy.append(pagerank_scores(snapshot, damping=damping))
        outcome = QueryPlanner().run(batch)
        for answer, reference in zip(outcome, legacy):
            assert answer.tobytes() == reference.tobytes()
        # 2 snapshots x 2 dampings share RWR+PageRank: 4 distinct systems.
        assert outcome.stats.groups == 4
        assert outcome.stats.factorizations == 4

    def test_solver_reuse_matches_planner(self, tiny_graph):
        solver = SnapshotMeasureSolver(tiny_graph)
        starts = [0, 2, 5]
        block = rwr_scores_many(tiny_graph, starts, solver=solver)
        outcome = QueryPlanner().run(
            QueryBatch().extend(
                make_query("rwr", tiny_graph, start_node=s) for s in starts
            )
        )
        for column, answer in enumerate(outcome):
            assert answer.tobytes() == block[:, column].tobytes()

    def test_salsa_empty_graph_direct_answer(self):
        empty = GraphSnapshot(4, [])
        outcome = QueryPlanner().run(
            QueryBatch().add_salsa_authority(empty).add_salsa_hub(empty)
        )
        authority, hub = salsa_scores(empty)
        assert outcome[0].tobytes() == authority.tobytes()
        assert outcome[1].tobytes() == hub.tobytes()
        assert outcome.stats.direct_answers == 2
        assert outcome.stats.factorizations == 0
        assert outcome.stats.groups == 0

    def test_evaluate_block_matches_scalar(self, tiny_graph):
        seed_sets = [(0, 3), (1,), (2, 4, 6)]
        block = evaluate_block(
            "ppr", tiny_graph, [{"seeds": seeds} for seeds in seed_sets]
        )
        legacy = ppr_scores_many(tiny_graph, seed_sets)
        assert block.tobytes() == legacy.tobytes()
        with pytest.raises(MeasureError):
            evaluate_block(
                "hitting_time", tiny_graph, [{"target": 0}, {"target": 1}]
            )


class TestGroupingAndCache:
    def test_one_factorization_per_distinct_system(self, tiny_graph, second_graph):
        planner = QueryPlanner()
        batch = (
            QueryBatch()
            .add_rwr(tiny_graph, 0)
            .add_rwr(tiny_graph, 1)
            .add_ppr(tiny_graph, [2, 3])
            .add_pagerank(tiny_graph)
            .add_pagerank(second_graph)
            .add_hitting_time(tiny_graph, 0)
            .add_hitting_time(tiny_graph, 1)
            .add_salsa_authority(tiny_graph)
        )
        plan = planner.plan(batch)
        distinct = {system_key(query) for query in batch}
        assert plan.group_count == len(distinct) == 5
        outcome = planner.execute(plan)
        assert outcome.stats.factorizations == 5
        assert outcome.stats.cache_hits == 0
        assert planner.cache_info() == {
            "hits": 0, "misses": 5, "evictions": 0,
            "refreshes": 0, "refresh_fallbacks": 0, "size": 5,
            "result_hits": 0, "result_misses": 8, "result_evictions": 0,
            "result_invalidations": 0, "result_size": 8,
        }
        # Second run: pure cache hits, zero factorizations, and every query
        # short-circuits through the result cache.
        again = planner.run(batch)
        assert again.stats.factorizations == 0
        assert again.stats.cache_hits == 5
        assert again.stats.result_hits == 8
        assert planner.cache_info()["misses"] == 5
        for first, second in zip(outcome, again):
            assert first.tobytes() == second.tobytes()

    def test_content_equal_snapshots_share_factors(self, tiny_graph):
        clone = GraphSnapshot(tiny_graph.n, tiny_graph.edges)
        outcome = QueryPlanner().run(
            QueryBatch().add_pagerank(tiny_graph).add_pagerank(clone)
        )
        assert outcome.stats.groups == 1
        assert outcome.stats.factorizations == 1
        assert outcome[0].tobytes() == outcome[1].tobytes()

    def test_shared_cache_across_planners(self, tiny_graph):
        cache = FactorCache()
        first = QueryPlanner(cache=cache).run(QueryBatch().add_pagerank(tiny_graph))
        second = QueryPlanner(cache=cache).run(QueryBatch().add_pagerank(tiny_graph))
        assert first.stats.factorizations == 1
        assert second.stats.factorizations == 0
        assert cache.cache_info() == {
            "hits": 1, "misses": 1, "evictions": 0,
            "refreshes": 0, "refresh_fallbacks": 0, "size": 1,
        }

    def test_empty_batch(self):
        outcome = QueryPlanner().run(QueryBatch())
        assert len(outcome) == 0
        assert outcome.stats.groups == 0
        assert outcome.stats.factorizations == 0

    def test_bounded_cache_evicts_lru(self, tiny_graph, second_graph):
        planner = QueryPlanner(cache=FactorCache(max_systems=1))
        planner.run(QueryBatch().add_pagerank(tiny_graph))
        planner.run(QueryBatch().add_pagerank(second_graph))  # evicts tiny
        outcome = planner.run(QueryBatch().add_pagerank(tiny_graph))
        assert outcome.stats.factorizations == 1
        info = planner.cache_info()
        assert info["evictions"] == 2
        assert info["size"] == 1
        with pytest.raises(MeasureError):
            FactorCache(max_systems=0)

    def test_bounded_cache_smaller_than_one_batch_still_answers(
        self, tiny_graph, second_graph
    ):
        # More miss groups in one batch than the cache holds: the batch must
        # still be answered from the freshly factorized systems, bitwise
        # equal to an unbounded planner's answers.
        planner = QueryPlanner(cache=FactorCache(max_systems=1))
        batch = (
            QueryBatch()
            .add_pagerank(tiny_graph)
            .add_pagerank(second_graph)
            .add_rwr(tiny_graph, 0, damping=0.6)
        )
        outcome = planner.run(batch)
        reference = QueryPlanner().run(batch)
        assert outcome.stats.factorizations == 3
        for answer, expected in zip(outcome, reference):
            assert answer.tobytes() == expected.tobytes()
        assert planner.cache_info()["size"] == 1

    def test_custom_matrix_builder_never_shares_kind_group(self, tiny_graph):
        # A spec that overrides build_matrix must not share factors with a
        # kind-equal spec, even with no matrix params.
        from repro.graphs.matrixkind import measure_matrix

        spec = MeasureSpec(
            name="doubled_system_test",
            kind=MatrixKind.RANDOM_WALK,
            build_rhs=get_spec("pagerank").build_rhs,
            build_matrix=lambda snapshot, damping, params: measure_matrix(
                snapshot, MatrixKind.RANDOM_WALK, damping
            ).scale(2.0),
        )
        register_spec(spec)
        try:
            batch = QueryBatch().add_pagerank(tiny_graph).add(
                make_query("doubled_system_test", tiny_graph)
            )
            outcome = QueryPlanner().run(batch)
            assert outcome.stats.groups == 2
            assert np.allclose(outcome[1], outcome[0] / 2.0)
            assert outcome[1].tobytes() == evaluate(batch[1]).tobytes()
        finally:
            unregister_spec("doubled_system_test")

    def test_repeated_execute_of_shortcut_plan_returns_fresh_arrays(self):
        empty = GraphSnapshot(3, [])
        planner = QueryPlanner()
        plan = planner.plan(QueryBatch().add_salsa_authority(empty))
        first = planner.execute(plan)
        first[0][:] = 0.0  # caller mutates its result in place
        second = planner.execute(plan)
        assert np.allclose(second[0], 1.0 / 3.0)

    @settings(max_examples=25, deadline=None)
    @given(
        choices=st.lists(
            st.tuples(
                st.sampled_from(["rwr", "ppr", "pagerank", "hitting_time"]),
                st.integers(min_value=0, max_value=6),
                st.sampled_from([0.85, 0.5]),
                st.booleans(),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_batch_grouping_properties(self, choices):
        """Every query answered exactly once; groups == distinct systems."""
        graph_a = GraphSnapshot(
            7,
            [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0),
             (4, 5), (5, 6), (6, 4), (6, 0), (1, 5), (3, 1)],
        )
        graph_b = GraphSnapshot(
            7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (2, 6)]
        )
        batch = QueryBatch()
        for measure, node, damping, use_b in choices:
            snapshot = graph_b if use_b else graph_a
            if measure == "rwr":
                batch.add_rwr(snapshot, node, damping=damping)
            elif measure == "ppr":
                batch.add_ppr(snapshot, [node, (node + 1) % 7], damping=damping)
            elif measure == "pagerank":
                batch.add_pagerank(snapshot, damping=damping)
            else:
                batch.add_hitting_time(snapshot, node, damping=damping)
        planner = QueryPlanner()
        plan = planner.plan(batch)
        distinct = {system_key(query) for query in batch}
        assert plan.group_count == len(distinct)
        positions = sorted(p for group in plan.groups for p in group.positions)
        assert positions == list(range(len(batch)))
        outcome = planner.execute(plan)
        assert outcome.stats.factorizations == len(distinct)
        assert len(outcome) == len(batch)
        for query, answer in zip(batch, outcome):
            assert answer is not None
            assert answer.shape == (query.snapshot.n,)
            assert answer.tobytes() == evaluate(query).tobytes()


class TestSeriesOnPlanner:
    def test_series_batch_bitwise_vs_series_methods(self):
        egs = growing_egs(nodes=20, snapshots=4, initial_edges=40, edges_per_step=5)
        series = MeasureSeries(egs, algorithm="CLUDE", alpha=0.9)
        pr = series.pagerank(list(range(egs.n)))
        rwr0 = series.rwr(0)
        batch = QueryBatch()
        for index in range(len(egs)):
            batch.add_pagerank(egs[index])
            batch.add_rwr(egs[index], 0)
        outcome = series.run_batch(batch)
        for index in range(len(egs)):
            assert outcome[2 * index].tobytes() == pr[index].tobytes()
            assert outcome[2 * index + 1].tobytes() == rwr0[index].tobytes()

    def test_series_rides_on_seeded_factors(self):
        egs = growing_egs(nodes=18, snapshots=3, initial_edges=35, edges_per_step=4)
        series = MeasureSeries(egs, algorithm="CINC", alpha=0.9)
        series.pagerank([0, 1])
        series.rwr_many([0, 2, 5])
        series.ppr([1, 2])
        info = series.cache_info()
        # Every snapshot group is a seeded hit: the whole series workload
        # adds zero factorizations beyond the sequence decomposition.
        assert info["misses"] == 0
        assert info["hits"] == 3 * len(egs)
        assert info["size"] == len(egs)

    def test_series_decomposition_solves_match_ems_solver(self):
        egs = growing_egs(nodes=16, snapshots=3, initial_edges=30, edges_per_step=4)
        series = MeasureSeries(egs, algorithm="CLUDE", alpha=0.9)
        from repro.measures.pagerank import pagerank_rhs

        expected = series.solver.solve_series(pagerank_rhs(egs.n))
        assert series.pagerank(list(range(egs.n))).tobytes() == expected.tobytes()

    def test_ems_solver_plan_attaches_tokens(self):
        egs = growing_egs(nodes=15, snapshots=3, initial_edges=28, edges_per_step=4)
        solver = EMSSolver.from_graphs(egs, algorithm="CLUDE", alpha=0.9)
        batch = (
            QueryBatch()
            .add_pagerank(egs[0])
            .add_rwr(egs[1], 2)
            .add_rwr(egs[1], 4)
            .add_ppr(egs[2], [0, 3])
        )
        plan = solver.plan(batch)
        assert all(
            query.system_token is not None
            for group in plan.groups
            for query in group.queries
        )
        outcome = solver.execute(plan)
        assert outcome.stats.factorizations == 0
        assert outcome.stats.cache_hits == plan.group_count == 3
        result = solver.decompose()
        from repro.measures.rwr import rwr_rhs

        expected = result.solve(1, rwr_rhs(egs.n, 2))
        assert outcome[1].tobytes() == expected.tobytes()

    def test_ems_solver_plan_foreign_snapshot_factorizes(self, tiny_graph):
        egs = growing_egs(nodes=7, snapshots=2, initial_edges=10, edges_per_step=2)
        solver = EMSSolver.from_graphs(egs, algorithm="BF")
        outcome = solver.run_batch(QueryBatch().add_pagerank(tiny_graph))
        assert outcome.stats.factorizations == 1
        assert outcome[0].tobytes() == pagerank_scores(tiny_graph).tobytes()

    def test_ems_solver_without_graph_context_refuses_planning(self, tiny_ems):
        solver = EMSSolver(tiny_ems, algorithm="BF")
        with pytest.raises(MeasureError):
            solver.plan(QueryBatch())
        with pytest.raises(MeasureError):
            solver.seed_planner()

    def test_seed_planner_rejects_executor_with_existing_planner(self):
        egs = growing_egs(nodes=10, snapshots=2, initial_edges=16, edges_per_step=2)
        solver = EMSSolver.from_graphs(egs, algorithm="BF")
        with pytest.raises(MeasureError):
            solver.seed_planner(planner=QueryPlanner(), executor=2)

    def test_graph_context_only_via_from_graphs(self, tiny_ems):
        # Direct construction cannot attach (possibly inconsistent) graph
        # context; from_graphs composes the EMS from the context itself.
        egs = growing_egs(nodes=40, snapshots=2, initial_edges=60, edges_per_step=5)
        with pytest.raises(TypeError):
            EMSSolver(tiny_ems, egs=egs)

    def test_from_graphs_non_default_kind_answers_match_engine(self):
        egs = growing_egs(
            nodes=14, snapshots=2, initial_edges=26, edges_per_step=3, directed=False
        )
        solver = EMSSolver.from_graphs(
            egs, kind=MatrixKind.SYMMETRIC_WALK, algorithm="BF"
        )
        # A RANDOM_WALK-kind query must NOT be pinned to the symmetric-walk
        # factors: it is factorized on demand and matches the legacy driver.
        outcome = solver.run_batch(QueryBatch().add_pagerank(egs[0]))
        assert outcome.stats.factorizations == 1
        assert outcome.stats.cache_hits == 0
        assert outcome[0].tobytes() == pagerank_scores(egs[0]).tobytes()


class TestRhsBlockBuilders:
    """Vectorized per-group RHS assembly is bitwise-invisible (warm path)."""

    CASES = {
        "rwr": [{"start_node": s} for s in (0, 3, 6, 3, 1)],
        "ppr": [{"seeds": seeds} for seeds in ((0, 2), (4,), (1, 1, 5), (6, 0, 3))],
        "pagerank": [{} for _ in range(4)],
        "hitting_time": [{"target": t} for t in (0, 2, 5)],
        "hitting_time_shared": [{"target": t} for t in (1, 4, 4)],
        "salsa_authority": [{} for _ in range(3)],
        "salsa_hub": [{} for _ in range(2)],
    }

    @pytest.mark.parametrize("measure", sorted(CASES))
    def test_block_builder_bitwise_equals_scalar(self, tiny_graph, measure):
        spec = get_spec(measure)
        assert spec.build_rhs_block is not None
        params_list = self.CASES[measure]
        for damping in (0.85, 0.5):
            block = spec.build_rhs_block(tiny_graph, damping, params_list)
            scalar = np.column_stack([
                spec.build_rhs(tiny_graph, damping, params) for params in params_list
            ])
            assert block.tobytes() == scalar.tobytes()

    def test_block_builders_propagate_bounds_errors(self, tiny_graph):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            get_spec("rwr").build_rhs_block(
                tiny_graph, 0.85, [{"start_node": tiny_graph.n}]
            )
        with pytest.raises(DimensionError):
            get_spec("ppr").build_rhs_block(tiny_graph, 0.85, [{"seeds": ()}])
        with pytest.raises(MeasureError):
            get_spec("hitting_time").build_rhs_block(
                tiny_graph, 0.85, [{"target": -1}]
            )

    def test_interleaved_measures_in_one_group_stay_bitwise(self, tiny_graph):
        # rwr/ppr/pagerank share one system key; interleaving them exercises
        # the run segmentation of the group RHS assembly.
        batch = (
            QueryBatch()
            .add_rwr(tiny_graph, 0)
            .add_ppr(tiny_graph, [1, 3])
            .add_rwr(tiny_graph, 4)
            .add_pagerank(tiny_graph)
            .add_rwr(tiny_graph, 2)
            .add_rwr(tiny_graph, 6)
            .add_ppr(tiny_graph, [5])
        )
        outcome = QueryPlanner(result_cache=0).run(batch)
        assert outcome.stats.groups == 1
        for query, answer in zip(batch, outcome):
            assert answer.tobytes() == evaluate(query).tobytes()

    def test_large_single_measure_group_bitwise(self, tiny_graph):
        batch = QueryBatch()
        for start in range(tiny_graph.n):
            batch.add_rwr(tiny_graph, start)
        outcome = QueryPlanner(result_cache=0).run(batch)
        block = rwr_scores_many(tiny_graph, list(range(tiny_graph.n)))
        for column, answer in enumerate(outcome):
            assert answer.tobytes() == block[:, column].tobytes()


@pytest.mark.slow
class TestPlannerExecutors:
    def test_parallel_factorization_bitwise_equal_serial(self, tiny_graph, second_graph):
        batch = (
            QueryBatch()
            .add_pagerank(tiny_graph)
            .add_pagerank(second_graph)
            .add_rwr(tiny_graph, 0, damping=0.6)
            .add_hitting_time(second_graph, 1)
        )
        serial = QueryPlanner(executor=SerialExecutor()).run(batch)
        parallel = QueryPlanner(executor=2).run(batch)
        assert serial.stats.factorizations == parallel.stats.factorizations == 4
        for left, right in zip(serial, parallel):
            assert left.tobytes() == right.tobytes()


class TestFactorizationFailures:
    """One unsolvable system must fail diagnosably, not sink the batch.

    Regression: a singular custom system raised out of the factor work unit
    and aborted the whole parallel batch with a bare worker traceback.  The
    planner now collects per-unit failure reports, caches every *healthy*
    sibling's factors first, and raises one :class:`FactorizationError`
    naming each failing unit and its system group.
    """

    @pytest.fixture()
    def singular_spec(self):
        from repro.sparse.csr import SparseMatrix

        spec = MeasureSpec(
            name="singular_system_test",
            kind=MatrixKind.RANDOM_WALK,
            build_rhs=get_spec("pagerank").build_rhs,
            build_matrix=lambda snapshot, damping, params: SparseMatrix(
                snapshot.n, {(0, 0): 1.0}
            ),
        )
        register_spec(spec)
        yield spec
        unregister_spec(spec.name)

    @pytest.mark.parametrize("executor", [None, 2])
    def test_error_names_the_failing_unit(self, tiny_graph, singular_spec, executor):
        from repro.errors import FactorizationError

        planner = QueryPlanner(executor=executor)
        batch = (QueryBatch()
                 .add_pagerank(tiny_graph)
                 .add(make_query("singular_system_test", tiny_graph))
                 .add_rwr(tiny_graph, 1))
        with pytest.raises(FactorizationError) as excinfo:
            planner.run(batch)
        message = str(excinfo.value)
        assert "factor unit" in message
        assert "singular_system_test" in message
        assert len(excinfo.value.failures) == 1

    def test_healthy_siblings_are_cached_before_the_raise(self, tiny_graph, singular_spec):
        from repro.errors import FactorizationError

        planner = QueryPlanner()
        poisoned = (QueryBatch()
                    .add_pagerank(tiny_graph)
                    .add(make_query("singular_system_test", tiny_graph))
                    .add_rwr(tiny_graph, 1))
        with pytest.raises(FactorizationError):
            planner.run(poisoned)
        # The healthy group's factors survived the failed run: retrying
        # without the poisoned query costs no new factorization.
        retry = planner.run(QueryBatch().add_pagerank(tiny_graph).add_rwr(tiny_graph, 1))
        assert retry.stats.factorizations == 0
        reference = QueryPlanner().run(
            QueryBatch().add_pagerank(tiny_graph).add_rwr(tiny_graph, 1)
        )
        for answer, expected in zip(retry, reference):
            assert answer.tobytes() == expected.tobytes()

    def test_all_groups_failing_reports_each(self, tiny_graph, second_graph, singular_spec):
        from repro.errors import FactorizationError

        planner = QueryPlanner()
        batch = (QueryBatch()
                 .add(make_query("singular_system_test", tiny_graph))
                 .add(make_query("singular_system_test", second_graph)))
        with pytest.raises(FactorizationError) as excinfo:
            planner.run(batch)
        assert len(excinfo.value.failures) == 2
