"""Delta-refresh suite: system deltas, Bennett cache refresh, planner lineage.

Three contracts are pinned here:

* **System deltas** — for every registered
  :class:`~repro.graphs.matrixkind.MatrixKind`, the localized
  :func:`~repro.graphs.matrixkind.system_delta` equals the full-matrix diff
  ``measure_matrix(after) - measure_matrix(before)``.
* **Refresh correctness** — a Bennett-refreshed cached system answers every
  registered measure within numerical tolerance of a cold factorization,
  across random small deltas (added *and* removed edges), and every failure
  mode (oversized delta, pattern violation, pivot breakdown, missing parent)
  falls back to a cold factorization with a counted ``refresh_fallbacks``.
* **Cache contracts** — seeding never silently evicts
  (:class:`~repro.errors.MeasureError` instead), hit/miss counters tick
  exactly once per group per execute, refresh installs never double-count as
  misses, and ``peek`` is counter- and recency-neutral.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import EMSSolver
from repro.errors import MeasureError, PatternError, SingularMatrixError
from repro.graphs.delta import GraphDelta, touched_nodes, touched_sources
from repro.graphs.generators import growing_egs
from repro.graphs.matrixkind import (
    MatrixKind,
    measure_matrix,
    system_delta,
)
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.bennett import bennett_update
from repro.lu.static_structure import StaticLUFactors
from repro.measures.timeseries import MeasureSeries
from repro.query import (
    FactorCache,
    FactorizedSystem,
    QueryBatch,
    QueryPlanner,
    make_query,
    system_key,
)
from repro.sparse.pattern import SparsityPattern

#: Refreshed answers agree with cold factorization to this tolerance.
TOLERANCE = 1e-8


@pytest.fixture
def second_graph() -> GraphSnapshot:
    """A second small graph so caches can hold distinct snapshot keys."""
    edges = [(0, 3), (3, 1), (1, 0), (1, 4), (4, 2), (2, 3), (2, 5), (5, 0), (4, 5)]
    return GraphSnapshot(6, edges, directed=True)

#: Per-measure query parameters for differential sweeps.
MEASURE_PARAMS = {
    "rwr": {"start_node": 0},
    "ppr": {"seeds": (0, 1)},
    "hitting_time": {"target": 0},
    "hitting_time_shared": {"target": 0},
}


def random_snapshot(rng: np.random.Generator, n: int, edges: int,
                    directed: bool = True) -> GraphSnapshot:
    pairs = set()
    for _ in range(edges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pairs.add((int(u), int(v)))
    return GraphSnapshot(n, pairs, directed=directed)


def evolve(rng: np.random.Generator, snapshot: GraphSnapshot,
           additions: int, removals: int) -> GraphSnapshot:
    """Return a snapshot evolved by a few random edge changes."""
    existing = sorted(snapshot.edges)
    removed = set()
    for _ in range(removals):
        if existing:
            removed.add(existing[int(rng.integers(0, len(existing)))])
    added = set()
    for _ in range(additions):
        u, v = rng.integers(0, snapshot.n, size=2)
        if u != v and (int(u), int(v)) not in snapshot.edges:
            added.add((int(u), int(v)))
    return snapshot.with_edges(added=added, removed=removed)


def assert_entries_match(got, want, tolerance: float = 1e-12) -> None:
    for key in set(got) | set(want):
        assert abs(got.get(key, 0.0) - want.get(key, 0.0)) < tolerance, key


def full_diff(before: GraphSnapshot, after: GraphSnapshot, kind: MatrixKind,
              damping: float = 0.85):
    return measure_matrix(before, kind=kind, damping=damping).delta_entries(
        measure_matrix(after, kind=kind, damping=damping)
    )


# ---------------------------------------------------------------------- #
# System deltas
# ---------------------------------------------------------------------- #
class TestSystemDelta:
    @pytest.mark.parametrize("kind", list(MatrixKind))
    @pytest.mark.parametrize("directed", [True, False])
    def test_matches_full_matrix_diff(self, kind, directed):
        rng = np.random.default_rng(11)
        before = random_snapshot(rng, 18, 54, directed=directed)
        after = evolve(rng, before, additions=3, removals=3)
        got = system_delta(before, after, kind=kind, damping=0.85)
        assert_entries_match(got, full_diff(before, after, kind))

    @pytest.mark.parametrize("kind", list(MatrixKind))
    def test_empty_delta_is_empty(self, kind, tiny_graph):
        assert system_delta(tiny_graph, tiny_graph, kind=kind) == {}

    @pytest.mark.parametrize("kind", list(MatrixKind))
    def test_removed_only_delta(self, kind, tiny_graph):
        removed = sorted(tiny_graph.edges)[:3]
        after = tiny_graph.with_edges(removed=removed)
        got = system_delta(tiny_graph, after, kind=kind)
        assert got
        assert_entries_match(got, full_diff(tiny_graph, after, kind))

    def test_node_losing_every_out_edge(self, tiny_graph):
        victim = 2
        removed = [(u, v) for u, v in tiny_graph.edges if u == victim]
        after = tiny_graph.with_edges(removed=removed)
        got = system_delta(tiny_graph, after, kind=MatrixKind.RANDOM_WALK)
        # The whole column of the victim vanishes from A = I - dW.
        assert all(j == victim for (_, j) in got)
        assert_entries_match(got, full_diff(tiny_graph, after, MatrixKind.RANDOM_WALK))

    def test_random_walk_delta_is_bitwise(self, tiny_graph):
        after = tiny_graph.with_edges(added=[(5, 3)], removed=[(0, 1)])
        got = system_delta(tiny_graph, after, kind=MatrixKind.RANDOM_WALK)
        want = full_diff(tiny_graph, after, MatrixKind.RANDOM_WALK)
        assert got == want  # identical float expressions, not just close

    def test_accepts_precomputed_graph_delta(self, tiny_graph):
        after = tiny_graph.with_edges(added=[(5, 3)])
        delta = GraphDelta.between(tiny_graph, after)
        got = system_delta(tiny_graph, after, delta=delta)
        assert got == system_delta(tiny_graph, after)

    def test_dimension_mismatch_raises(self, tiny_graph):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            system_delta(tiny_graph, GraphSnapshot(3, [(0, 1)]))

    def test_invalid_damping_raises(self, tiny_graph):
        with pytest.raises(MeasureError):
            system_delta(tiny_graph, tiny_graph, damping=1.5)

    def test_touched_helpers(self):
        delta = GraphDelta(added=[(1, 2)], removed=[(4, 3), (4, 1)])
        assert touched_nodes(delta) == (1, 2, 3, 4)
        assert touched_sources(delta) == (1, 4)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_walk_differential_hypothesis(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 36))
        before = random_snapshot(rng, n, int(rng.integers(n, 4 * n)))
        after = evolve(rng, before, additions=int(rng.integers(0, 4)),
                       removals=int(rng.integers(0, 4)))
        got = system_delta(before, after, kind=MatrixKind.RANDOM_WALK)
        assert_entries_match(got, full_diff(before, after, MatrixKind.RANDOM_WALK))


# ---------------------------------------------------------------------- #
# FactorCache.refresh (the direct one-pair API)
# ---------------------------------------------------------------------- #
def _cached_pair(rng=None, nodes=40, edges=140, additions=2, removals=2):
    """Return (cache, old_key, new_key, old/new snapshots) with old cached."""
    rng = rng if rng is not None else np.random.default_rng(5)
    before = random_snapshot(rng, nodes, edges)
    after = evolve(rng, before, additions=additions, removals=removals)
    cache = FactorCache()
    old_key = system_key(make_query("pagerank", before))
    new_key = system_key(make_query("pagerank", after))
    cache.seed(old_key, FactorizedSystem.factorize(measure_matrix(before)))
    return cache, old_key, new_key, before, after


class TestFactorCacheRefresh:
    def test_refresh_matches_cold_factorization(self):
        cache, old_key, new_key, before, after = _cached_pair()
        delta = system_delta(before, after)
        system = cache.refresh(old_key, new_key, delta,
                               new_matrix=measure_matrix(after))
        assert system is not None
        assert new_key in cache and old_key in cache
        cold = FactorizedSystem.factorize(measure_matrix(after))
        b = np.ones(before.n)
        assert np.max(np.abs(system.solve(b) - cold.solve(b))) < TOLERANCE
        info = cache.cache_info()
        assert info["refreshes"] == 1
        assert info["refresh_fallbacks"] == 0
        assert info["hits"] == 0 and info["misses"] == 0  # refresh is lookup-neutral

    def test_refresh_default_matrix_is_old_plus_delta(self):
        cache, old_key, new_key, before, after = _cached_pair()
        delta = system_delta(before, after)
        system = cache.refresh(old_key, new_key, delta)
        want = measure_matrix(after)
        assert system.matrix.n == want.n
        assert np.max(np.abs(system.matrix.to_dense() - want.to_dense())) < 1e-12

    def test_refresh_leaves_parent_factors_untouched(self):
        cache, old_key, new_key, before, after = _cached_pair()
        b = np.ones(before.n)
        parent_before = cache.peek(old_key).solve(b)
        cache.refresh(old_key, new_key, system_delta(before, after))
        parent_after = cache.peek(old_key).solve(b)
        assert parent_before.tobytes() == parent_after.tobytes()

    def test_steal_removes_parent_entry(self):
        cache, old_key, new_key, before, after = _cached_pair()
        system = cache.refresh(old_key, new_key, system_delta(before, after),
                               steal=True)
        assert system is not None
        assert old_key not in cache and new_key in cache

    def test_steal_keeps_parent_on_breakdown(self, monkeypatch):
        # steal only takes effect on success: a mid-sweep failure must leave
        # the parent entry cached and answering.
        cache, old_key, new_key, before, after = _cached_pair()
        monkeypatch.setattr(
            "repro.query.cache.bennett_update",
            lambda *a, **k: (_ for _ in ()).throw(SingularMatrixError(0, 0.0)),
        )
        assert cache.refresh(old_key, new_key, system_delta(before, after),
                             steal=True) is None
        assert old_key in cache and new_key not in cache
        assert cache.cache_info()["refresh_fallbacks"] == 1

    def test_threshold_fallback(self):
        rng = np.random.default_rng(5)
        before = random_snapshot(rng, 40, 140)
        after = evolve(rng, before, additions=2, removals=2)
        cache = FactorCache(refresh_threshold=0.0)
        old_key = system_key(make_query("pagerank", before))
        new_key = system_key(make_query("pagerank", after))
        cache.seed(old_key, FactorizedSystem.factorize(measure_matrix(before)))
        assert cache.refresh(old_key, new_key, system_delta(before, after)) is None
        assert cache.cache_info()["refresh_fallbacks"] == 1
        assert new_key not in cache

    def test_missing_parent_fallback(self):
        cache, old_key, new_key, before, after = _cached_pair()
        cache.clear()
        assert cache.refresh(old_key, new_key, system_delta(before, after)) is None
        assert cache.cache_info()["refresh_fallbacks"] == 1

    def test_pivot_breakdown_fallback(self, monkeypatch):
        cache, old_key, new_key, before, after = _cached_pair()
        monkeypatch.setattr(
            "repro.query.cache.bennett_update",
            lambda *a, **k: (_ for _ in ()).throw(SingularMatrixError(0, 0.0)),
        )
        assert cache.refresh(old_key, new_key, system_delta(before, after)) is None
        info = cache.cache_info()
        assert info["refresh_fallbacks"] == 1 and info["refreshes"] == 0
        assert old_key in cache  # clone path: parent entry survives the breakdown

    def test_negative_threshold_rejected(self):
        with pytest.raises(MeasureError):
            FactorCache(refresh_threshold=-0.1)

    def test_refresh_unit_reports_pattern_violation_as_none(self):
        # A diagonal-only static pattern cannot absorb off-diagonal fill, so
        # the REFRESH work-unit body must surface factors=None, not raise.
        from repro.exec.executors import SerialExecutor
        from repro.exec.plan import plan_refresh_batch

        factors = StaticLUFactors(SparsityPattern(3, set()))
        for k in range(3):
            factors.set_l_diagonal(k, 1.0)
        with pytest.raises(PatternError):
            bennett_update(factors.copy(), {(1, 0): 0.5})
        matrix = measure_matrix(GraphSnapshot(3, [(0, 1)]))
        plan = plan_refresh_batch([(matrix, factors, None, {(1, 0): 0.5})])
        outcome = SerialExecutor().execute(plan)
        assert outcome.decompositions[0].factors is None


class TestCloneSemantics:
    def test_static_copy_isolates_values(self, tiny_graph):
        solver = EMSSolver.from_graphs(
            growing_egs(nodes=30, snapshots=3, initial_edges=90,
                        edges_per_step=5, seed=2),
            algorithm="CLUDE", alpha=0.5,
        )
        factors = solver.decompose()[0].factors
        assert isinstance(factors, StaticLUFactors)
        clone = factors.copy()
        clone.set_l_diagonal(0, 123.0)
        assert factors.l_diagonal(0) != 123.0
        # structure is shared, values are not
        assert clone._l_col_rows is factors._l_col_rows
        assert clone._l_col_values is not factors._l_col_values

    def test_factorized_system_clone_isolates_solves(self, tiny_graph):
        system = FactorizedSystem.factorize(measure_matrix(tiny_graph))
        b = np.ones(tiny_graph.n)
        reference = system.solve(b)
        clone = system.clone()
        bennett_update(clone.factors, {(0, 0): 0.25})
        assert system.solve(b).tobytes() == reference.tobytes()
        assert clone.solve(b).tobytes() != reference.tobytes()


# ---------------------------------------------------------------------- #
# Satellite bugfix: seeding must never silently evict
# ---------------------------------------------------------------------- #
class TestSeedOverflowContract:
    def test_seed_overflow_raises(self, tiny_graph, second_graph):
        cache = FactorCache(max_systems=1)
        key_a = system_key(make_query("pagerank", tiny_graph))
        key_b = system_key(make_query("pagerank", second_graph))
        cache.seed(key_a, FactorizedSystem.factorize(measure_matrix(tiny_graph)))
        with pytest.raises(MeasureError, match="seeding would overflow"):
            cache.seed(key_b, FactorizedSystem.factorize(measure_matrix(second_graph)))
        assert cache.cache_info()["evictions"] == 0
        assert key_a in cache and key_b not in cache

    def test_reseeding_existing_key_at_bound_is_fine(self, tiny_graph):
        cache = FactorCache(max_systems=1)
        key = system_key(make_query("pagerank", tiny_graph))
        system = FactorizedSystem.factorize(measure_matrix(tiny_graph))
        cache.seed(key, system)
        cache.seed(key, system)  # same key: no growth, no eviction, no error
        assert len(cache) == 1

    def test_seed_planner_bounded_cache_raises(self):
        egs = growing_egs(nodes=25, snapshots=4, initial_edges=75,
                          edges_per_step=5, seed=6)
        solver = EMSSolver.from_graphs(egs, algorithm="BF")
        bounded = QueryPlanner(cache=FactorCache(max_systems=2))
        with pytest.raises(MeasureError, match="seeding would overflow"):
            solver.seed_planner(bounded)
        # A bound covering the whole sequence seeds fine.
        roomy = QueryPlanner(cache=FactorCache(max_systems=len(egs)))
        solver.seed_planner(roomy)
        assert len(roomy.cache) == len(egs)

    def test_store_path_still_evicts(self, tiny_graph, second_graph):
        cache = FactorCache(max_systems=1)
        key_a = system_key(make_query("pagerank", tiny_graph))
        key_b = system_key(make_query("pagerank", second_graph))
        cache.store(key_a, FactorizedSystem.factorize(measure_matrix(tiny_graph)))
        cache.store(key_b, FactorizedSystem.factorize(measure_matrix(second_graph)))
        assert cache.cache_info()["evictions"] == 1
        assert key_a not in cache and key_b in cache


# ---------------------------------------------------------------------- #
# Satellite bugfix: hit/miss accounting at group granularity
# ---------------------------------------------------------------------- #
class TestCounterAccounting:
    def test_one_lookup_per_group_per_execute(self, tiny_graph, second_graph):
        planner = QueryPlanner()
        batch = (QueryBatch()
                 .add_pagerank(tiny_graph)
                 .add_rwr(tiny_graph, 1)       # same group as pagerank
                 .add_pagerank(second_graph))  # second group
        plan = planner.plan(batch)
        assert plan.group_count == 2
        # Planning alone must not touch the cache.
        info = planner.cache_info()
        assert info["hits"] == info["misses"] == 0
        planner.execute(plan)
        info = planner.cache_info()
        assert (info["hits"], info["misses"]) == (0, 2)
        planner.execute(plan)
        info = planner.cache_info()
        assert (info["hits"], info["misses"]) == (2, 2)

    def test_peek_is_counter_and_recency_neutral(self, tiny_graph, second_graph):
        cache = FactorCache(max_systems=2)
        key_a = system_key(make_query("pagerank", tiny_graph))
        key_b = system_key(make_query("pagerank", second_graph))
        key_c = system_key(make_query("pagerank", tiny_graph, damping=0.6))
        cache.store(key_a, FactorizedSystem.factorize(measure_matrix(tiny_graph)))
        cache.store(key_b, FactorizedSystem.factorize(measure_matrix(second_graph)))
        before = cache.cache_info()
        assert cache.peek(key_a) is not None
        assert cache.peek(key_c) is None
        assert cache.cache_info() == before
        # peek(key_a) did not freshen key_a: it is still the LRU victim.
        cache.store(key_c, FactorizedSystem.factorize(
            measure_matrix(tiny_graph, damping=0.6)))
        assert key_a not in cache and key_b in cache

    def test_refresh_install_does_not_count_as_miss(self):
        rng = np.random.default_rng(8)
        before = random_snapshot(rng, 30, 100)
        after = evolve(rng, before, additions=2, removals=1)
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(before))
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 1
        assert outcome.stats.factorizations == 0
        info = planner.cache_info()
        # one counted miss per execute-group, nothing extra from the install
        assert (info["hits"], info["misses"], info["refreshes"]) == (0, 2, 1)
        # the refreshed key now serves hits
        planner.run(QueryBatch().add_pagerank(after))
        info = planner.cache_info()
        assert (info["hits"], info["misses"], info["refreshes"]) == (1, 2, 1)

    def test_shortcut_answers_touch_no_counters(self):
        empty = GraphSnapshot(4, [])
        planner = QueryPlanner()
        planner.run(QueryBatch().add_salsa_authority(empty).add_salsa_hub(empty))
        info = planner.cache_info()
        assert info["hits"] == info["misses"] == info["size"] == 0


# ---------------------------------------------------------------------- #
# Planner-level refresh
# ---------------------------------------------------------------------- #
def _evolved_pair(seed=3, nodes=60, snapshots=2):
    egs = growing_egs(nodes=nodes, snapshots=snapshots,
                      initial_edges=nodes * 3, edges_per_step=6, seed=seed)
    return egs[0], egs[-1]


class TestPlannerRefresh:
    def test_explicit_lineage_refreshes(self):
        before, after = _evolved_pair()
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(before).add_rwr(before, 4))
        planner.register_evolution(before, after)
        batch = QueryBatch().add_pagerank(after).add_rwr(after, 4)
        outcome = planner.run(batch)
        assert outcome.stats.refreshes == 1
        assert outcome.stats.factorizations == 0
        cold = QueryPlanner().run(batch)
        for answer, reference in zip(outcome, cold):
            assert np.max(np.abs(answer - reference)) < TOLERANCE

    def test_no_lineage_no_auto_refresh_goes_cold(self):
        before, after = _evolved_pair()
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(before))
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 0
        assert outcome.stats.factorizations == 1

    def test_auto_refresh_scans_cached_snapshots(self):
        before, after = _evolved_pair()
        planner = QueryPlanner(auto_refresh=True)
        planner.run(QueryBatch().add_pagerank(before))
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(after))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_auto_refresh_picks_nearest_parent(self):
        before, after = _evolved_pair()
        near = after.with_edges(added=[(0, after.n - 1)])
        planner = QueryPlanner(auto_refresh=True)
        planner.run(QueryBatch().add_pagerank(before))
        planner.run(QueryBatch().add_pagerank(after))
        # `near` differs from `after` by one edge but from `before` by many.
        outcome = planner.run(QueryBatch().add_pagerank(near))
        assert outcome.stats.refreshes == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(near))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_custom_matrix_builder_never_refreshes(self):
        before, after = _evolved_pair()
        planner = QueryPlanner(auto_refresh=True)
        planner.run(QueryBatch().add_hitting_time(before, 0))
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_hitting_time(after, 0))
        assert outcome.stats.refreshes == 0
        assert outcome.stats.factorizations == 1
        cold = QueryPlanner().run(QueryBatch().add_hitting_time(after, 0))
        assert outcome[0].tobytes() == cold[0].tobytes()

    def test_removed_edge_evolution_refreshes(self):
        before, _ = _evolved_pair()
        after = before.with_edges(removed=sorted(before.edges)[:3])
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(before))
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(after))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_refresh_chain_stays_accurate(self):
        rng = np.random.default_rng(17)
        snapshot = random_snapshot(rng, 50, 200)
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(snapshot))
        for _ in range(5):
            evolved = evolve(rng, snapshot, additions=2, removals=2)
            if evolved == snapshot:
                continue
            planner.register_evolution(snapshot, evolved)
            outcome = planner.run(QueryBatch().add_pagerank(evolved))
            assert outcome.stats.factorizations == 0
            cold = QueryPlanner().run(QueryBatch().add_pagerank(evolved))
            assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE
            snapshot = evolved

    def test_oversized_delta_falls_back_cold(self):
        before, _ = _evolved_pair()
        planner = QueryPlanner(cache=FactorCache(refresh_threshold=0.0))
        planner.run(QueryBatch().add_pagerank(before))
        after = before.with_edges(added=[(0, before.n - 1)])
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 0
        assert outcome.stats.factorizations == 1
        assert planner.cache_info()["refresh_fallbacks"] == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(after))
        assert outcome[0].tobytes() == cold[0].tobytes()

    def test_same_batch_lineage_chain_refreshes_every_link(self):
        # g -> g2 -> g3 registered; g2 and g3 queried in ONE batch: g3's
        # parent only exists after g2's refresh commits, so the planner must
        # resolve the chain in waves instead of cold-factorizing g3.
        before, _ = _evolved_pair(seed=23)
        g2 = before.with_edges(added=[(0, before.n - 1)])
        g3 = g2.with_edges(removed=[sorted(g2.edges)[0]])
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(before))
        planner.register_evolution(before, g2)
        planner.register_evolution(g2, g3)
        outcome = planner.run(QueryBatch().add_pagerank(g2).add_pagerank(g3))
        assert outcome.stats.refreshes == 2
        assert outcome.stats.factorizations == 0
        cold = QueryPlanner().run(QueryBatch().add_pagerank(g2).add_pagerank(g3))
        for answer, reference in zip(outcome, cold):
            assert np.max(np.abs(answer - reference)) < TOLERANCE

    def test_lineage_with_missing_parent_counts_fallback(self):
        # Lineage registered but the parent system was never cached (or was
        # evicted): the group cold-factorizes AND the fallback is counted,
        # matching FactorCache.refresh on a missing parent.
        before, after = _evolved_pair(seed=24)
        planner = QueryPlanner()
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.refreshes == 0
        assert outcome.stats.factorizations == 1
        assert planner.cache_info()["refresh_fallbacks"] == 1

    def test_register_evolution_validates(self, tiny_graph):
        planner = QueryPlanner()
        with pytest.raises(MeasureError):
            planner.register_evolution(tiny_graph, GraphSnapshot(3, [(0, 1)]))
        with pytest.raises(MeasureError):
            planner.register_evolution("not a snapshot", tiny_graph)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_differential_refresh_all_measures_hypothesis(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 48))
        before = random_snapshot(rng, n, 4 * n)
        after = evolve(rng, before, additions=2, removals=2)
        params = dict(MEASURE_PARAMS)
        from repro.query.spec import registered_measures

        def batch_for(snapshot):
            batch = QueryBatch()
            for name in registered_measures():
                batch.add(make_query(name, snapshot, **params.get(name, {})))
            return batch

        planner = QueryPlanner()
        planner.run(batch_for(before))
        planner.register_evolution(before, after)
        outcome = planner.run(batch_for(after))
        cold = QueryPlanner().run(batch_for(after))
        for answer, reference in zip(outcome, cold):
            assert np.max(np.abs(answer - reference)) < TOLERANCE
        # every miss group was either refreshed or cold-factorized
        assert (outcome.stats.refreshes + outcome.stats.factorizations
                == outcome.stats.groups - outcome.stats.cache_hits)

    @pytest.mark.slow
    def test_parallel_refresh_bitwise_equals_serial(self):
        before, after = _evolved_pair(seed=21)
        batch = QueryBatch().add_pagerank(after).add_rwr(after, 3)
        answers = {}
        for name, executor in (("serial", None), ("parallel", 2)):
            planner = QueryPlanner(executor=executor)
            planner.run(QueryBatch().add_pagerank(before).add_rwr(before, 3))
            planner.register_evolution(before, after)
            outcome = planner.run(batch)
            assert outcome.stats.refreshes == 1
            answers[name] = outcome
        for serial, parallel in zip(answers["serial"], answers["parallel"]):
            assert serial.tobytes() == parallel.tobytes()


# ---------------------------------------------------------------------- #
# EMSSolver / MeasureSeries ride-along
# ---------------------------------------------------------------------- #
class TestEvolutionRideAlong:
    @pytest.mark.parametrize("algorithm", ["BF", "INC", "CINC"])
    def test_emssolver_refreshes_evolved_head(self, algorithm):
        egs = growing_egs(nodes=50, snapshots=4, initial_edges=150,
                          edges_per_step=6, seed=13)
        solver = EMSSolver.from_graphs(egs, algorithm=algorithm, alpha=0.8)
        head = egs[len(egs) - 1]
        evolved = head.with_edges(added=[(0, 9)], removed=[sorted(head.edges)[0]])
        solver.register_evolution(evolved)
        outcome = solver.run_batch(QueryBatch().add_pagerank(evolved))
        assert outcome.stats.refreshes == 1
        assert outcome.stats.factorizations == 0
        cold = QueryPlanner().run(QueryBatch().add_pagerank(evolved))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_emssolver_refresh_from_explicit_index(self):
        egs = growing_egs(nodes=40, snapshots=3, initial_edges=120,
                          edges_per_step=5, seed=14)
        solver = EMSSolver.from_graphs(egs, algorithm="BF")
        base = egs[0]
        evolved = base.with_edges(added=[(1, 7)])
        solver.register_evolution(evolved, from_index=0)
        outcome = solver.run_batch(QueryBatch().add_pagerank(evolved))
        assert outcome.stats.refreshes == 1

    def test_clude_static_pattern_fallback_is_correct(self):
        # CLUDE seeds StaticLUFactors; an evolution that needs out-of-pattern
        # fill must fall back to a cold factorization and still be right.
        egs = growing_egs(nodes=60, snapshots=4, initial_edges=180,
                          edges_per_step=8, seed=9)
        solver = EMSSolver.from_graphs(egs, algorithm="CLUDE", alpha=0.8)
        head = egs[len(egs) - 1]
        evolved = head.with_edges(added=[(0, 7), (3, 11)],
                                  removed=[sorted(head.edges)[0]])
        solver.register_evolution(evolved)
        outcome = solver.run_batch(QueryBatch().add_pagerank(evolved))
        info = solver.planner_cache_info()
        assert info["refreshes"] + info["refresh_fallbacks"] == 1
        assert outcome.stats.refreshes + outcome.stats.factorizations == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(evolved))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_measure_series_register_evolution(self):
        egs = growing_egs(nodes=40, snapshots=3, initial_edges=120,
                          edges_per_step=5, seed=15)
        series = MeasureSeries(egs, algorithm="CINC", alpha=0.8)
        head = egs[len(egs) - 1]
        evolved = head.with_edges(added=[(2, 9)])
        series.register_evolution(evolved)
        outcome = series.run_batch(QueryBatch().add_pagerank(evolved))
        assert outcome.stats.refreshes == 1
        cold = QueryPlanner().run(QueryBatch().add_pagerank(evolved))
        assert np.max(np.abs(outcome[0] - cold[0])) < TOLERANCE

    def test_register_evolution_requires_graph_context(self, tiny_ems, tiny_graph):
        solver = EMSSolver(tiny_ems, algorithm="BF")
        with pytest.raises(MeasureError, match="graph context"):
            solver.register_evolution(tiny_graph)

    def test_register_evolution_index_bounds(self):
        egs = growing_egs(nodes=20, snapshots=2, initial_edges=60,
                          edges_per_step=4, seed=16)
        solver = EMSSolver.from_graphs(egs, algorithm="BF")
        with pytest.raises(MeasureError, match="out of bounds"):
            solver.register_evolution(egs[0], from_index=7)


class TestLineageBounding:
    """A bounded factor cache must bound the planner's lineage state too.

    Regression: ``register_evolution`` over a long chain accumulated one
    lineage entry (holding two full snapshots) per step forever, even with a
    small ``max_systems`` factor cache — the planner leaked memory linearly
    in chain length.  The cache now fires an eviction listener exactly when a
    key leaves it, and the planner drops lineage entries (and snapshot
    bindings) whose parent system no longer backs any cached key.
    """

    def _chain(self, length, seed=21):
        rng = np.random.default_rng(seed)
        chain = [random_snapshot(rng, 30, 120)]
        for _ in range(length - 1):
            chain.append(evolve(rng, chain[-1], additions=2, removals=1))
        return chain

    def test_long_chain_keeps_lineage_near_cache_size(self):
        chain = self._chain(12)
        planner = QueryPlanner(cache=FactorCache(max_systems=2))
        planner.run(QueryBatch().add_pagerank(chain[0]))
        for old, new in zip(chain, chain[1:]):
            planner.register_evolution(old, new)
            outcome = planner.run(QueryBatch().add_pagerank(new))
            # Refresh chains stay warm: each head refreshes its predecessor.
            assert outcome.stats.refreshes + outcome.stats.factorizations == 1
        # Every entry whose parent's factors were evicted is gone; what
        # remains is bounded by the cache, not by the chain length.
        assert len(planner._lineage) <= 2
        assert planner.cache_info()["size"] <= 2

    def test_unbounded_cache_keeps_all_lineage(self):
        chain = self._chain(5)
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(chain[0]))
        for old, new in zip(chain, chain[1:]):
            planner.register_evolution(old, new)
            planner.run(QueryBatch().add_pagerank(new))
        assert len(planner._lineage) == len(chain) - 1

    def test_clear_prunes_every_lineage_entry(self):
        chain = self._chain(4)
        planner = QueryPlanner()
        planner.run(QueryBatch().add_pagerank(chain[0]))
        for old, new in zip(chain, chain[1:]):
            planner.register_evolution(old, new)
            planner.run(QueryBatch().add_pagerank(new))
        planner.cache.clear()
        assert planner._lineage == {}

    def test_answers_stay_correct_under_eviction_pruning(self):
        chain = self._chain(8, seed=22)
        bounded = QueryPlanner(cache=FactorCache(max_systems=2))
        for old, new in zip(chain, chain[1:]):
            bounded.register_evolution(old, new)
        for snapshot in chain:
            answer = bounded.run(QueryBatch().add_pagerank(snapshot))[0]
            cold = QueryPlanner().run(QueryBatch().add_pagerank(snapshot))[0]
            assert np.max(np.abs(answer - cold)) < TOLERANCE


class TestEvictionListeners:
    """The eviction channel fires exactly when a key leaves the cache."""

    def test_install_does_not_fire_eviction(self):
        rng = np.random.default_rng(31)
        cache = FactorCache()
        evicted = []
        cache.add_eviction_listener(evicted.append)
        planner = QueryPlanner(cache=cache)
        planner.run(QueryBatch().add_pagerank(random_snapshot(rng, 20, 60)))
        assert evicted == []

    def test_lru_eviction_and_clear_fire(self):
        rng = np.random.default_rng(32)
        cache = FactorCache(max_systems=1)
        evicted = []
        cache.add_eviction_listener(evicted.append)
        planner = QueryPlanner(cache=cache)
        first = random_snapshot(rng, 20, 60)
        second = random_snapshot(rng, 20, 60)
        planner.run(QueryBatch().add_pagerank(first))
        planner.run(QueryBatch().add_pagerank(second))
        assert [key.system for key in evicted] == [first]
        cache.clear()
        assert [key.system for key in evicted] == [first, second]

    def test_listener_sees_key_already_removed(self):
        # Listeners that scan cache.keys() (the planner's pruning does) must
        # not observe the departing key as still present.
        rng = np.random.default_rng(33)
        cache = FactorCache(max_systems=1)
        observed = []
        cache.add_eviction_listener(
            lambda key: observed.append(key in set(cache.keys()))
        )
        planner = QueryPlanner(cache=cache)
        planner.run(QueryBatch().add_pagerank(random_snapshot(rng, 20, 60)))
        planner.run(QueryBatch().add_pagerank(random_snapshot(rng, 20, 60)))
        cache.clear()
        assert observed == [False, False]
