"""Tests for the result containers, benchmark workloads, runner and reporting."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.reporting import format_table, reports_to_table, series_table
from repro.bench.runner import WorkloadRunner, sweep_alpha, sweep_beta
from repro.bench.workloads import (
    Workload,
    dblp_workload,
    synthetic_workload_with_delta,
    wiki_workload,
)
from repro.core.bf import decompose_sequence_bf
from repro.core.result import Stopwatch, TimingBreakdown
from repro.errors import DimensionError, MeasureError
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.graphs.matrixkind import MatrixKind


def tiny_workload(symmetric=False):
    if symmetric:
        from repro.graphs.generators import growing_egs

        egs = growing_egs(nodes=30, snapshots=5, initial_edges=60, edges_per_step=5,
                          seed=4, directed=False)
        ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
        return Workload(name="tiny-symmetric", matrices=list(ems), symmetric=True)
    config = SyntheticEGSConfig(nodes=35, edge_pool_size=300, average_degree=4,
                                delta_edges=8, snapshots=5, seed=4)
    egs = generate_synthetic_egs(config)
    ems = EvolvingMatrixSequence.from_graphs(egs)
    return Workload(name="tiny-directed", matrices=list(ems), symmetric=False)


class TestStopwatchAndTiming:
    def test_stopwatch_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.time("bucket"):
            time.sleep(0.01)
        with stopwatch.time("bucket"):
            time.sleep(0.01)
        assert stopwatch.total("bucket") >= 0.015
        assert stopwatch.total("missing") == 0.0

    def test_breakdown_from_stopwatch(self):
        stopwatch = Stopwatch()
        stopwatch.add("ordering", 1.0)
        stopwatch.add("bennett", 2.0)
        breakdown = TimingBreakdown.from_stopwatch(stopwatch)
        assert breakdown.ordering_time == 1.0
        assert breakdown.bennett_time == 2.0
        assert breakdown.total_time == pytest.approx(3.0)
        assert breakdown.as_dict()["total_time"] == pytest.approx(3.0)


class TestSequenceResult:
    def test_summary_and_solves(self, tiny_ems):
        matrices = list(tiny_ems)
        result = decompose_sequence_bf(matrices)
        summary = result.summary()
        assert summary["algorithm_matrices"] == len(matrices)
        assert summary["mean_fill_size"] > 0
        b = np.ones(tiny_ems.n)
        solutions = result.solve_all(b)
        assert len(solutions) == len(matrices)

    def test_quality_losses_length_check(self, tiny_ems):
        from repro.core.quality import MarkowitzReference

        result = decompose_sequence_bf(list(tiny_ems))
        with pytest.raises(DimensionError):
            result.quality_losses(list(tiny_ems)[:-1], MarkowitzReference())

    def test_empty_result_rejected(self):
        from repro.core.result import SequenceResult

        with pytest.raises(DimensionError):
            SequenceResult(algorithm="X", decompositions=[], timing=TimingBreakdown())


class TestWorkloads:
    def test_wiki_and_dblp_workload_shapes(self):
        wiki = wiki_workload("tiny")
        assert wiki.length > 0 and not wiki.symmetric and wiki.n > 0
        dblp = dblp_workload("tiny")
        assert dblp.symmetric
        assert all(matrix.is_symmetric() for matrix in dblp.matrices[:2])

    def test_synthetic_delta_workload(self):
        workload = synthetic_workload_with_delta(delta_edges=10, nodes=40, snapshots=4)
        assert workload.length == 4
        with pytest.raises(Exception):
            synthetic_workload_with_delta(delta_edges=-1)


class TestWorkloadRunner:
    def test_evaluate_all_algorithms(self):
        runner = WorkloadRunner(tiny_workload())
        for algorithm in ("BF", "INC", "CINC", "CLUDE"):
            report = runner.evaluate(algorithm, alpha=0.9)
            assert report.total_time > 0
            assert report.speedup > 0
            assert report.average_quality_loss >= -1e-9
        # BF is the reference: its speedup is exactly 1.
        assert runner.evaluate("BF").speedup == pytest.approx(1.0)

    def test_bf_result_is_cached(self):
        runner = WorkloadRunner(tiny_workload())
        assert runner.bf_result() is runner.bf_result()

    def test_unknown_algorithm(self):
        runner = WorkloadRunner(tiny_workload())
        with pytest.raises(MeasureError):
            runner.evaluate("TURBO")

    def test_qc_requires_symmetric_workload(self):
        runner = WorkloadRunner(tiny_workload(symmetric=False))
        with pytest.raises(MeasureError):
            runner.evaluate_qc("CLUDE", beta=0.1)

    def test_qc_evaluation(self):
        runner = WorkloadRunner(tiny_workload(symmetric=True))
        report = runner.evaluate_qc("CLUDE", beta=0.2)
        assert report.average_quality_loss <= 0.2 + 1e-9
        report_cinc = runner.evaluate_qc("CINC", beta=0.2)
        assert report_cinc.algorithm == "CINC-QC"

    def test_sweeps(self):
        runner = WorkloadRunner(tiny_workload())
        reports = sweep_alpha(runner, ["CINC", "CLUDE"], [0.9, 0.95])
        assert len(reports) == 4
        symmetric_runner = WorkloadRunner(tiny_workload(symmetric=True))
        qc_reports = sweep_beta(symmetric_runner, ["CLUDE"], [0.1, 0.3])
        assert len(qc_reports) == 2


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 20, "b": 3.0}]
        table = format_table(rows, ["a", "b"])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([], ["a"]) == "(no data)"

    def test_reports_to_table(self):
        runner = WorkloadRunner(tiny_workload())
        reports = [runner.evaluate("CLUDE", alpha=0.9)]
        table = reports_to_table(reports)
        assert "CLUDE" in table

    def test_series_table(self):
        table = series_table("alpha", [0.9, 0.95], {"CLUDE": [10.0, 8.0], "CINC": [5.0, 4.0]})
        assert "alpha" in table and "CLUDE" in table and "CINC" in table
        assert len(table.splitlines()) == 4
