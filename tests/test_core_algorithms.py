"""Integration tests for the four LUDEM algorithms (BF, INC, CINC, CLUDE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude, universal_symbolic_pattern
from repro.core.clustering import alpha_clustering
from repro.core.inc import decompose_sequence_inc
from repro.core.quality import MarkowitzReference
from repro.errors import EmptySequenceError
from repro.lu.symbolic import reorder_pattern, symbolic_decomposition
from repro.lu.validate import factors_are_valid


ALGORITHMS = {
    "BF": decompose_sequence_bf,
    "INC": decompose_sequence_inc,
    "CINC": lambda matrices: decompose_sequence_cinc(matrices, alpha=0.9),
    "CLUDE": lambda matrices: decompose_sequence_clude(matrices, alpha=0.9),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestAllAlgorithms:
    def test_factors_reconstruct_every_matrix(self, name, tiny_ems):
        matrices = list(tiny_ems)
        result = ALGORITHMS[name](matrices)
        assert len(result) == len(matrices)
        for decomposition, matrix in zip(result.decompositions, matrices):
            assert factors_are_valid(
                decomposition.factors, matrix, decomposition.ordering, tolerance=1e-6
            )

    def test_solves_match_direct_solution(self, name, tiny_ems):
        matrices = list(tiny_ems)
        result = ALGORITHMS[name](matrices)
        rng = np.random.default_rng(0)
        b = rng.random(tiny_ems.n)
        for index, matrix in enumerate(matrices):
            x = result.solve(index, b)
            assert np.allclose(matrix.matvec(x), b, atol=1e-7)

    def test_fill_sizes_positive_and_recorded(self, name, tiny_ems):
        result = ALGORITHMS[name](list(tiny_ems))
        assert all(size >= tiny_ems.n for size in result.fill_sizes)

    def test_empty_sequence_rejected(self, name, tiny_ems):
        with pytest.raises(EmptySequenceError):
            ALGORITHMS[name]([])

    def test_timing_components_nonnegative(self, name, tiny_ems):
        result = ALGORITHMS[name](list(tiny_ems))
        timing = result.timing.as_dict()
        assert all(value >= 0.0 for value in timing.values())
        assert timing["total_time"] > 0.0


class TestAlgorithmSpecificBehaviour:
    def test_bf_has_zero_quality_loss(self, tiny_ems):
        matrices = list(tiny_ems)
        result = decompose_sequence_bf(matrices)
        reference = MarkowitzReference()
        losses = result.quality_losses(matrices, reference)
        assert all(abs(loss) < 1e-9 for loss in losses)

    def test_bf_uses_one_cluster_per_matrix(self, tiny_ems):
        result = decompose_sequence_bf(list(tiny_ems))
        assert result.cluster_count == len(tiny_ems)

    def test_inc_uses_single_ordering(self, tiny_ems):
        result = decompose_sequence_inc(list(tiny_ems))
        first = result[0].ordering
        assert all(decomposition.ordering == first for decomposition in result.decompositions)
        assert result.cluster_count == 1

    def test_inc_quality_never_better_than_cluster_methods_on_average(self, tiny_ems):
        matrices = list(tiny_ems)
        reference = MarkowitzReference()
        inc_loss = decompose_sequence_inc(matrices).average_quality_loss(matrices, reference)
        clude_loss = decompose_sequence_clude(matrices, alpha=0.95).average_quality_loss(
            matrices, reference
        )
        assert clude_loss <= inc_loss + 1e-9

    def test_cinc_orderings_shared_within_cluster(self, tiny_ems):
        matrices = list(tiny_ems)
        result = decompose_sequence_cinc(matrices, alpha=0.9)
        by_cluster = {}
        for decomposition in result.decompositions:
            by_cluster.setdefault(decomposition.cluster_id, set()).add(decomposition.ordering)
        assert all(len(orderings) == 1 for orderings in by_cluster.values())

    def test_clude_has_no_structural_ops(self, tiny_ems):
        result = decompose_sequence_clude(list(tiny_ems), alpha=0.9)
        assert result.total_structural_ops == 0

    def test_cinc_and_inc_have_structural_ops_recorded(self, tiny_ems):
        matrices = list(tiny_ems)
        inc_ops = decompose_sequence_inc(matrices).total_structural_ops
        cinc_ops = decompose_sequence_cinc(matrices, alpha=0.9).total_structural_ops
        assert inc_ops >= 0 and cinc_ops >= 0

    def test_clude_respects_precomputed_clusters(self, tiny_ems):
        matrices = list(tiny_ems)
        clusters = alpha_clustering(matrices, 0.97)
        result = decompose_sequence_clude(matrices, clusters=clusters)
        assert result.cluster_count == len(clusters)

    def test_clude_share_factors_mode(self, tiny_ems):
        """With share_factors=True the last member of each cluster is still valid."""
        matrices = list(tiny_ems)
        result = decompose_sequence_clude(matrices, alpha=0.9, share_factors=True)
        # Group decompositions by cluster and check the final member of each.
        last_in_cluster = {}
        for decomposition in result.decompositions:
            last_in_cluster[decomposition.cluster_id] = decomposition
        for decomposition in last_in_cluster.values():
            matrix = matrices[decomposition.index]
            assert factors_are_valid(
                decomposition.factors, matrix, decomposition.ordering, tolerance=1e-6
            )

    def test_universal_pattern_covers_members(self, tiny_ems):
        """Theorem 1 applied through the CLUDE helper."""
        matrices = list(tiny_ems)
        clusters = alpha_clustering(matrices, 0.9)
        from repro.lu.markowitz import markowitz_ordering
        from repro.core.similarity import cluster_union_matrix

        for cluster in clusters:
            members = [matrices[index] for index in cluster.indices]
            ordering = markowitz_ordering(cluster_union_matrix(members))
            ussp = universal_symbolic_pattern(members, ordering)
            for member in members:
                reordered = reorder_pattern(
                    member.pattern(), ordering.row.order, ordering.column.order
                )
                assert symbolic_decomposition(reordered) <= ussp
