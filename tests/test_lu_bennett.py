"""Tests for Bennett's incremental LU update (dynamic and static paths)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError, SingularMatrixError
from repro.lu.bennett import (
    bennett_rank_one_update,
    bennett_update,
    delta_to_rank_one_terms,
)
from repro.lu.crout import crout_decompose, crout_decompose_into
from repro.lu.static_structure import StaticLUFactors
from repro.lu.symbolic import symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from tests.conftest import perturb_matrix, random_dd_matrix


class TestDeltaToRankOneTerms:
    def test_empty_delta(self):
        assert delta_to_rank_one_terms({}) == []

    def test_groups_by_column_when_fewer_columns(self):
        delta = {(0, 2): 1.0, (1, 2): 2.0, (3, 2): -1.0}
        terms = delta_to_rank_one_terms(delta)
        assert len(terms) == 1
        u, v = terms[0]
        assert v == {2: 1.0}
        assert u == {0: 1.0, 1: 2.0, 3: -1.0}

    def test_groups_by_row_when_fewer_rows(self):
        delta = {(1, 0): 1.0, (1, 2): 2.0, (1, 3): -1.0}
        terms = delta_to_rank_one_terms(delta)
        assert len(terms) == 1
        u, v = terms[0]
        assert u == {1: 1.0}
        assert v == {0: 1.0, 2: 2.0, 3: -1.0}

    def test_terms_reconstruct_delta(self, rng):
        n = 8
        delta = {}
        for _ in range(10):
            i, j = rng.integers(0, n, size=2)
            delta[(int(i), int(j))] = float(rng.normal())
        dense = np.zeros((n, n))
        for (i, j), value in delta.items():
            dense[i, j] = value
        rebuilt = np.zeros((n, n))
        for u, v in delta_to_rank_one_terms(delta):
            u_vec = np.zeros(n)
            v_vec = np.zeros(n)
            for index, value in u.items():
                u_vec[index] = value
            for index, value in v.items():
                v_vec[index] = value
            rebuilt += np.outer(u_vec, v_vec)
        assert np.allclose(rebuilt, dense)


class TestRankOneUpdate:
    def test_matches_full_refactorization(self, rng):
        matrix = random_dd_matrix(15, 50, rng)
        factors = crout_decompose(matrix)
        u = {int(rng.integers(0, 15)): 0.3, int(rng.integers(0, 15)): -0.2}
        v = {int(rng.integers(0, 15)): 0.4}
        bennett_rank_one_update(factors, u, v)
        dense = matrix.to_dense()
        u_vec = np.zeros(15)
        v_vec = np.zeros(15)
        for index, value in u.items():
            u_vec[index] = value
        for index, value in v.items():
            v_vec[index] = value
        expected = dense + np.outer(u_vec, v_vec)
        assert np.allclose(factors.l_dense() @ factors.u_dense(), expected, atol=1e-9)

    def test_returns_active_step_count(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        steps = bennett_rank_one_update(factors, {9: 0.1}, {9: 1.0})
        assert steps == 1

    def test_zero_update_is_noop(self, rng):
        matrix = random_dd_matrix(10, 30, rng)
        factors = crout_decompose(matrix)
        before = factors.l_dense() @ factors.u_dense()
        steps = bennett_rank_one_update(factors, {}, {})
        assert steps == 0
        assert np.allclose(factors.l_dense() @ factors.u_dense(), before)

    def test_out_of_bounds_index_rejected(self, rng):
        factors = crout_decompose(random_dd_matrix(5, 12, rng))
        with pytest.raises(PatternError):
            bennett_rank_one_update(factors, {7: 1.0}, {0: 1.0})

    def test_singular_update_rejected(self):
        matrix = SparseMatrix(2, {(0, 0): 1.0, (1, 1): 1.0})
        factors = crout_decompose(matrix)
        with pytest.raises(SingularMatrixError):
            bennett_rank_one_update(factors, {0: -1.0}, {0: 1.0})


class TestBennettUpdateSequences:
    def test_dynamic_matches_refactorization(self, rng):
        matrix = random_dd_matrix(20, 70, rng)
        target = perturb_matrix(matrix, changes=8, rng=rng)
        factors = crout_decompose(matrix)
        bennett_update(factors, matrix.delta_entries(target))
        assert np.allclose(
            factors.l_dense() @ factors.u_dense(), target.to_dense(), atol=1e-8
        )

    def test_static_matches_refactorization(self, rng):
        matrix = random_dd_matrix(20, 70, rng)
        target = perturb_matrix(matrix, changes=8, rng=rng)
        ussp = symbolic_decomposition(matrix.pattern().union(target.pattern()))
        static = StaticLUFactors(ussp)
        crout_decompose_into(matrix, static, pattern=ussp)
        bennett_update(static, matrix.delta_entries(target))
        assert np.allclose(
            static.l_dense() @ static.u_dense(), target.to_dense(), atol=1e-8
        )
        assert static.structural_ops == 0

    def test_static_and_dynamic_agree(self, rng):
        matrix = random_dd_matrix(16, 55, rng)
        target = perturb_matrix(matrix, changes=6, rng=rng)
        delta = matrix.delta_entries(target)

        dynamic = crout_decompose(matrix)
        bennett_update(dynamic, delta)

        ussp = symbolic_decomposition(matrix.pattern().union(target.pattern()))
        static = StaticLUFactors(ussp)
        crout_decompose_into(matrix, static, pattern=ussp)
        bennett_update(static, delta)

        assert np.allclose(dynamic.l_dense(), static.l_dense(), atol=1e-8)
        assert np.allclose(dynamic.u_dense(), static.u_dense(), atol=1e-8)

    def test_chain_of_updates_stays_accurate(self, rng):
        """Long chains of incremental updates (as in INC) must not drift."""
        current = random_dd_matrix(15, 50, rng)
        factors = crout_decompose(current)
        for _ in range(10):
            following = perturb_matrix(current, changes=4, rng=rng)
            bennett_update(factors, current.delta_entries(following))
            current = following
        assert np.allclose(
            factors.l_dense() @ factors.u_dense(), current.to_dense(), atol=1e-7
        )

    def test_update_outside_static_pattern_raises(self, rng):
        matrix = random_dd_matrix(10, 25, rng)
        ussp = symbolic_decomposition(matrix.pattern())
        static = StaticLUFactors(ussp)
        crout_decompose_into(matrix, static, pattern=ussp)
        # Find a position that is not admissible and push a large update there.
        outside = None
        for i in range(10):
            for j in range(10):
                if i != j and (i, j) not in ussp:
                    outside = (i, j)
                    break
            if outside:
                break
        if outside is None:
            pytest.skip("matrix too dense to have an outside position")
        with pytest.raises((PatternError, SingularMatrixError)):
            bennett_update(static, {outside: 5.0})
            # Reaching here without an exception means the pattern check was
            # bypassed; force a failure.
            raise AssertionError("expected a pattern violation")


@given(seed=st.integers(0, 20_000))
@settings(max_examples=40, deadline=None)
def test_bennett_equals_refactorization_property(seed):
    """Property: Bennett-updated factors equal the factors of the new matrix."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 18))
    matrix = random_dd_matrix(n, int(rng.integers(2 * n, 5 * n)), rng)
    target = perturb_matrix(matrix, changes=int(rng.integers(1, 6)), rng=rng)
    factors = crout_decompose(matrix)
    bennett_update(factors, matrix.delta_entries(target))
    expected = crout_decompose(target)
    assert np.allclose(factors.l_dense(), expected.l_dense(), atol=1e-7)
    assert np.allclose(factors.u_dense(), expected.u_dense(), atol=1e-7)
