"""Regression tests: the bench runner computes its baselines exactly once.

Sweeping a parameter (α, β or workers) on one workload must reuse the cached
BF baseline and the cached Markowitz references — re-running either would
silently multiply benchmark wall time and was exactly the failure mode the
runner's caches exist to prevent.  The counters these tests pin
(:attr:`WorkloadRunner.bf_baseline_runs`,
:meth:`MarkowitzReference.cache_info`) count real recomputation, not calls.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import WorkloadRunner, sweep_alpha, sweep_beta, sweep_workers
from repro.bench.workloads import Workload
from repro.core.quality import MarkowitzReference
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs, growing_egs
from repro.graphs.matrixkind import MatrixKind


@pytest.fixture
def directed_runner() -> WorkloadRunner:
    config = SyntheticEGSConfig(
        nodes=36, edge_pool_size=324, average_degree=3, delta_edges=10,
        snapshots=6, seed=31,
    )
    ems = EvolvingMatrixSequence.from_graphs(
        generate_synthetic_egs(config), kind=MatrixKind.RANDOM_WALK
    )
    return WorkloadRunner(
        Workload(name="cache-directed", matrices=list(ems), symmetric=False)
    )


@pytest.fixture
def symmetric_runner() -> WorkloadRunner:
    egs = growing_egs(
        nodes=30, snapshots=5, initial_edges=60, edges_per_step=6, seed=17, directed=False
    )
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    return WorkloadRunner(
        Workload(name="cache-symmetric", matrices=list(ems), symmetric=True)
    )


def test_alpha_sweep_computes_bf_and_references_once(directed_runner):
    runner = directed_runner
    length = runner.workload.length
    assert runner.bf_baseline_runs == 0

    reports = sweep_alpha(runner, ["BF", "INC", "CINC", "CLUDE"], [0.90, 0.95, 1.00])
    assert len(reports) == 12
    # One BF baseline for the whole sweep, despite BF appearing in every round.
    assert runner.bf_baseline_runs == 1

    info = runner.reference.cache_info()
    # Every matrix's Markowitz reference computed exactly once...
    assert info["misses"] == length
    assert info["size"] == length
    # ...and every later quality-loss evaluation served from cache.
    assert info["hits"] == (len(reports) - 1) * length


def test_workers_sweep_reuses_the_serial_baseline(directed_runner):
    runner = directed_runner
    reports = sweep_workers(runner, ["BF", "CLUDE"], [0, 1], alpha=0.95)
    assert [report.workers for report in reports] == [0, 0, 1, 1]
    assert runner.bf_baseline_runs == 1
    assert runner.reference.cache_info()["misses"] == runner.workload.length
    # Parallel evaluations still report against the one cached serial baseline.
    serial_bf, _, parallel_bf, _ = reports
    assert serial_bf.algorithm == parallel_bf.algorithm == "BF"
    assert parallel_bf.wall_time > 0.0


def test_beta_sweep_shares_references_with_clustering(symmetric_runner):
    runner = symmetric_runner
    length = runner.workload.length
    reports = sweep_beta(runner, ["CINC-QC", "CLUDE-QC"], [0.1, 0.3])
    assert len(reports) == 4
    assert runner.bf_baseline_runs == 1

    info = runner.reference.cache_info()
    # β-clustering itself consults the same shared reference cache, so even
    # with clustering + quality-loss reporting across 4 runs the expensive
    # reference is computed once per matrix.
    assert info["misses"] == length
    assert info["hits"] > 0


def test_cache_info_counts_hits_and_misses_exactly(small_dd_matrix):
    reference = MarkowitzReference()
    assert reference.cache_info() == {"hits": 0, "misses": 0, "size": 0}
    reference.size_for(0, small_dd_matrix)
    reference.size_for(0, small_dd_matrix)
    reference.size_for(1, small_dd_matrix)
    assert reference.cache_info() == {"hits": 1, "misses": 2, "size": 2}
