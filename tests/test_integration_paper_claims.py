"""End-to-end integration tests asserting the paper's qualitative claims.

These tests exercise full pipelines (dataset -> EMS -> algorithms -> metrics)
at tiny scale and check the *directional* findings of the paper's evaluation:
cluster-based orderings beat a single global ordering, CLUDE avoids
structural restructuring entirely, the quality constraint of LUDEM-QC holds,
and LU-based query answering matches (and is consistent with) the
approximation baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import WorkloadRunner
from repro.bench.workloads import Workload
from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.core.quality import MarkowitzReference
from repro.datasets.registry import load_dblp, load_wiki
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import MatrixKind
from repro.lu.validate import factors_are_valid


@pytest.fixture(scope="module")
def wiki_matrices():
    egs = load_wiki("tiny")
    return list(EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK))


@pytest.fixture(scope="module")
def dblp_matrices():
    egs = load_dblp("tiny")
    return list(EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK))


class TestOrderingQualityClaims:
    def test_inc_quality_degrades_along_the_sequence(self, wiki_matrices):
        """Figure 5's shape: INC's quality-loss grows as matrices drift from A_1."""
        result = decompose_sequence_inc(wiki_matrices)
        reference = MarkowitzReference()
        losses = result.quality_losses(wiki_matrices, reference)
        first_half = np.mean(losses[: len(losses) // 2])
        second_half = np.mean(losses[len(losses) // 2:])
        assert second_half >= first_half

    def test_cluster_methods_beat_inc_on_quality(self, wiki_matrices):
        """Figure 6's shape: CLUDE <= CINC <= INC in average quality-loss."""
        reference = MarkowitzReference()
        inc = decompose_sequence_inc(wiki_matrices).average_quality_loss(wiki_matrices, reference)
        cinc = decompose_sequence_cinc(wiki_matrices, alpha=0.95).average_quality_loss(
            wiki_matrices, reference
        )
        clude = decompose_sequence_clude(wiki_matrices, alpha=0.95).average_quality_loss(
            wiki_matrices, reference
        )
        assert clude <= cinc + 1e-9
        assert cinc <= inc + 1e-9

    def test_quality_improves_with_alpha(self, wiki_matrices):
        """Figure 6's trend: larger alpha (tighter clusters) -> lower quality-loss."""
        reference = MarkowitzReference()
        loose = decompose_sequence_clude(wiki_matrices, alpha=0.85).average_quality_loss(
            wiki_matrices, reference
        )
        tight = decompose_sequence_clude(wiki_matrices, alpha=0.99).average_quality_loss(
            wiki_matrices, reference
        )
        assert tight <= loose + 1e-9


class TestStructuralCostClaims:
    def test_clude_eliminates_structural_operations(self, wiki_matrices):
        """CLUDE's static USSP structure performs zero adjacency-list restructuring."""
        cinc = decompose_sequence_cinc(wiki_matrices, alpha=0.95)
        clude = decompose_sequence_clude(wiki_matrices, alpha=0.95)
        assert clude.total_structural_ops == 0
        assert cinc.total_structural_ops > 0

    def test_all_algorithms_produce_identical_solutions(self, wiki_matrices):
        """Exactness claim: every algorithm solves the same systems exactly."""
        rng = np.random.default_rng(7)
        b = rng.random(wiki_matrices[0].n)
        results = [
            decompose_sequence_bf(wiki_matrices),
            decompose_sequence_inc(wiki_matrices),
            decompose_sequence_cinc(wiki_matrices, alpha=0.9),
            decompose_sequence_clude(wiki_matrices, alpha=0.9),
        ]
        reference_solutions = [results[0].solve(i, b) for i in range(len(wiki_matrices))]
        for result in results[1:]:
            for index, expected in enumerate(reference_solutions):
                assert np.allclose(result.solve(index, b), expected, atol=1e-6)


class TestQCClaims:
    def test_qc_constraint_and_speed_tradeoff(self, dblp_matrices):
        """Figure 10's shape: looser beta -> fewer clusters (cheaper), quality within beta."""
        workload = Workload(name="dblp-tiny", matrices=dblp_matrices, symmetric=True)
        runner = WorkloadRunner(workload)
        tight = runner.evaluate_qc("CLUDE", beta=0.02)
        loose = runner.evaluate_qc("CLUDE", beta=0.4)
        assert tight.average_quality_loss <= 0.02 + 1e-9
        assert loose.average_quality_loss <= 0.4 + 1e-9
        assert loose.cluster_count <= tight.cluster_count

    def test_qc_factors_are_exact(self, dblp_matrices):
        from repro.core.problem import LUDEMQCProblem
        from repro.core.qc import solve_qc_clude
        from repro.graphs.ems import EvolvingMatrixSequence

        problem = LUDEMQCProblem(
            ems=EvolvingMatrixSequence(dblp_matrices), quality_requirement=0.2
        )
        result = solve_qc_clude(problem)
        for decomposition, matrix in zip(result.decompositions, dblp_matrices):
            assert factors_are_valid(
                decomposition.factors, matrix, decomposition.ordering, tolerance=1e-6
            )


class TestQueryAnsweringClaims:
    def test_lu_solve_agrees_with_pi_and_mc_direction(self):
        """The LU path, PI and MC all identify the same closest node (Section 8)."""
        from repro.datasets.registry import load_wiki
        from repro.measures.monte_carlo import rwr_monte_carlo
        from repro.measures.power_iteration import rwr_power_iteration
        from repro.measures.rwr import rwr_scores

        snapshot = load_wiki("tiny")[3]
        start = 0
        exact = rwr_scores(snapshot, start)
        pi = rwr_power_iteration(snapshot, start, tolerance=1e-12)
        mc = rwr_monte_carlo(snapshot, start, walks=3000, seed=1)
        assert np.allclose(exact, pi.scores, atol=1e-8)
        # All three agree on the most-proximate node (excluding the start itself).
        exact_top = int(np.argsort(-exact)[1])
        mc_ranking = np.argsort(-mc.scores)
        assert exact_top in mc_ranking[:5]

    def test_factored_solves_are_reused_across_queries(self, wiki_matrices):
        """One decomposition answers many right-hand sides (the paper's core motivation)."""
        result = decompose_sequence_clude(wiki_matrices, alpha=0.95)
        rng = np.random.default_rng(3)
        matrix = wiki_matrices[2]
        for _ in range(5):
            b = rng.random(matrix.n)
            x = result.solve(2, b)
            assert np.allclose(matrix.matvec(x), b, atol=1e-7)
