"""Tests for Crout LU decomposition (sparse and dense reference)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError, SingularMatrixError
from repro.lu.crout import crout_decompose, crout_decompose_dense, crout_decompose_into
from repro.lu.static_structure import StaticLUFactors
from repro.lu.symbolic import symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from tests.conftest import random_dd_matrix


class TestDenseReference:
    def test_known_2x2(self):
        lower, upper = crout_decompose_dense(np.array([[4.0, 2.0], [6.0, 7.0]]))
        assert np.allclose(lower, [[4.0, 0.0], [6.0, 4.0]])
        assert np.allclose(upper, [[1.0, 0.5], [0.0, 1.0]])

    def test_reconstruction(self, rng):
        dense = random_dd_matrix(10, 35, rng).to_dense()
        lower, upper = crout_decompose_dense(dense)
        assert np.allclose(lower @ upper, dense)
        # L carries pivots, U has a unit diagonal.
        assert np.allclose(np.diag(upper), 1.0)
        assert np.all(np.abs(np.diag(lower)) > 0)

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            crout_decompose_dense(np.zeros((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(PatternError):
            crout_decompose_dense(np.zeros((2, 3)))


class TestSparseCrout:
    def test_matches_dense_reference(self, rng):
        matrix = random_dd_matrix(20, 70, rng)
        factors = crout_decompose(matrix)
        lower_ref, upper_ref = crout_decompose_dense(matrix.to_dense())
        assert np.allclose(factors.l_dense(), lower_ref)
        assert np.allclose(factors.u_dense(), upper_ref)

    def test_reconstruction_error_small(self, rng):
        for _ in range(5):
            matrix = random_dd_matrix(15, 50, rng)
            factors = crout_decompose(matrix)
            product = factors.l_dense() @ factors.u_dense()
            assert np.max(np.abs(product - matrix.to_dense())) < 1e-10

    def test_identity_matrix(self):
        factors = crout_decompose(SparseMatrix.identity(5))
        assert factors.fill_size == 5
        assert np.allclose(factors.l_dense(), np.eye(5))

    def test_singular_raises(self):
        singular = SparseMatrix(3, {(0, 0): 1.0, (1, 1): 1.0})  # zero (2,2) pivot
        with pytest.raises(SingularMatrixError):
            crout_decompose(singular)

    def test_factor_pattern_within_symbolic(self, rng):
        matrix = random_dd_matrix(15, 50, rng)
        predicted = symbolic_decomposition(matrix.pattern())
        factors = crout_decompose(matrix)
        assert factors.decomposed_pattern() <= predicted

    def test_decompose_into_static_structure(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        pattern = symbolic_decomposition(matrix.pattern())
        static = StaticLUFactors(pattern)
        crout_decompose_into(matrix, static, pattern=pattern)
        assert np.allclose(static.l_dense() @ static.u_dense(), matrix.to_dense())

    def test_decompose_into_larger_pattern_is_fine(self, rng):
        """A USSP strictly larger than s̃p(A) must still work (extra zeros)."""
        matrix = random_dd_matrix(12, 40, rng)
        other = random_dd_matrix(12, 40, rng)
        union = matrix.pattern().union(other.pattern())
        ussp = symbolic_decomposition(union)
        static = StaticLUFactors(ussp)
        crout_decompose_into(matrix, static, pattern=ussp)
        assert np.allclose(static.l_dense() @ static.u_dense(), matrix.to_dense())

    def test_dimension_mismatch_rejected(self, rng):
        matrix = random_dd_matrix(6, 15, rng)
        wrong = StaticLUFactors(symbolic_decomposition(random_dd_matrix(7, 15, rng).pattern()))
        with pytest.raises(PatternError):
            crout_decompose_into(matrix, wrong)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_crout_reconstruction_property(seed):
    """L @ U == A for random diagonally dominant matrices."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 16))
    matrix = random_dd_matrix(n, int(rng.integers(n, 4 * n)), rng)
    factors = crout_decompose(matrix)
    assert np.max(np.abs(factors.l_dense() @ factors.u_dense() - matrix.to_dense())) < 1e-9
