"""Determinism regression tests for the synthetic evolving-graph generators.

Audit outcome for ``repro/graphs/generators.py``: no generator may fall back
to global/unseeded randomness.  The top-level entry points take explicit
seeds, the building blocks take an explicit ``rng`` or ``seed`` (and refuse
to run with neither), and the same seed must reproduce the identical EGS —
snapshot for snapshot, edge for edge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import (
    SyntheticEGSConfig,
    barabasi_albert_edges,
    generate_edge_pool,
    generate_synthetic_egs,
    growing_egs,
)
from repro.graphs.matrixkind import MatrixKind


def _egs_edge_sets(egs):
    return [frozenset(snapshot.edges) for snapshot in egs]


CONFIG = SyntheticEGSConfig(
    nodes=40, edge_pool_size=360, average_degree=4, delta_edges=12, snapshots=7, seed=123
)


class TestSyntheticEGS:
    def test_same_seed_reproduces_identical_egs(self):
        first = generate_synthetic_egs(CONFIG)
        second = generate_synthetic_egs(CONFIG)
        assert _egs_edge_sets(first) == _egs_edge_sets(second)

    def test_different_seed_changes_the_egs(self):
        import dataclasses

        other = dataclasses.replace(CONFIG, seed=124)
        assert _egs_edge_sets(generate_synthetic_egs(CONFIG)) != _egs_edge_sets(
            generate_synthetic_egs(other)
        )

    def test_same_seed_reproduces_identical_matrices(self):
        ems_a = EvolvingMatrixSequence.from_graphs(
            generate_synthetic_egs(CONFIG), kind=MatrixKind.RANDOM_WALK
        )
        ems_b = EvolvingMatrixSequence.from_graphs(
            generate_synthetic_egs(CONFIG), kind=MatrixKind.RANDOM_WALK
        )
        for a, b in zip(ems_a, ems_b):
            assert list(a.items()) == list(b.items())


class TestGrowingEGS:
    def test_same_seed_reproduces_identical_egs(self):
        def make():
            return growing_egs(
                nodes=30, snapshots=5, initial_edges=60, edges_per_step=7,
                seed=77, directed=False,
            )
        assert _egs_edge_sets(make()) == _egs_edge_sets(make())

    def test_different_seed_changes_the_egs(self):
        a = growing_egs(nodes=30, snapshots=5, initial_edges=60, edges_per_step=7, seed=77)
        b = growing_egs(nodes=30, snapshots=5, initial_edges=60, edges_per_step=7, seed=78)
        assert _egs_edge_sets(a) != _egs_edge_sets(b)


class TestBuildingBlocksRequireExplicitSeeding:
    def test_barabasi_albert_seed_equals_equivalent_rng(self):
        from_seed = barabasi_albert_edges(50, 3, seed=5)
        from_rng = barabasi_albert_edges(50, 3, np.random.default_rng(5))
        assert from_seed == from_rng

    def test_barabasi_albert_rejects_unseeded_use(self):
        with pytest.raises(DatasetError):
            barabasi_albert_edges(50, 3)

    def test_barabasi_albert_rejects_both_rng_and_seed(self):
        with pytest.raises(DatasetError):
            barabasi_albert_edges(50, 3, np.random.default_rng(5), seed=5)

    def test_edge_pool_seed_determinism(self):
        assert generate_edge_pool(CONFIG, seed=9) == generate_edge_pool(CONFIG, seed=9)
        with pytest.raises(DatasetError):
            generate_edge_pool(CONFIG)
