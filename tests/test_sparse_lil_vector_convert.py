"""Tests for the adjacency-list matrix, vector helpers and format conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix
from repro.sparse.lil import AdjacencyListMatrix
from repro.sparse.vector import (
    dense_to_sparse,
    residual_norm,
    seed_vector,
    sparse_to_dense,
    top_k,
    unit_vector,
)
from tests.conftest import random_dd_matrix


class TestAdjacencyListMatrix:
    def test_set_get_round_trip(self):
        matrix = AdjacencyListMatrix(4)
        matrix.set(1, 2, 3.5)
        matrix.set(1, 0, -1.0)
        assert matrix.get(1, 2) == 3.5
        assert matrix.get(1, 0) == -1.0
        assert matrix.get(0, 0) == 0.0
        assert matrix.nnz == 2

    def test_rows_stay_sorted(self):
        matrix = AdjacencyListMatrix(5)
        for column in (4, 1, 3, 0, 2):
            matrix.set(0, column, float(column + 1))
        assert matrix.row_columns(0) == [0, 1, 2, 3, 4]

    def test_setting_zero_removes_entry(self):
        matrix = AdjacencyListMatrix(3)
        matrix.set(0, 1, 2.0)
        matrix.set(0, 1, 0.0)
        assert matrix.nnz == 0

    def test_structural_ops_counting(self):
        matrix = AdjacencyListMatrix(3)
        matrix.set(0, 1, 2.0)       # insert -> 1 op
        matrix.set(0, 1, 3.0)       # value update -> 0 ops
        matrix.set(0, 1, 0.0)       # delete -> 1 op
        assert matrix.structural_ops == 2
        matrix.reset_counters()
        assert matrix.structural_ops == 0

    def test_initial_population_not_counted(self):
        matrix = AdjacencyListMatrix(3, {(0, 1): 1.0, (2, 2): 2.0})
        assert matrix.structural_ops == 0
        assert matrix.nnz == 2

    def test_add_to_and_clear_row(self):
        matrix = AdjacencyListMatrix(3)
        matrix.add_to(0, 1, 1.5)
        matrix.add_to(0, 1, -1.5)
        assert matrix.get(0, 1) == 0.0
        matrix.set(1, 0, 1.0)
        matrix.set(1, 2, 1.0)
        matrix.clear_row(1)
        assert matrix.row_columns(1) == []

    def test_round_trip_with_sparse(self, rng):
        original = random_dd_matrix(10, 30, rng)
        adjacency = AdjacencyListMatrix.from_sparse(original)
        assert adjacency.to_sparse() == original
        assert adjacency.pattern() == original.pattern()

    def test_copy_is_independent(self):
        matrix = AdjacencyListMatrix(3, {(0, 1): 1.0})
        clone = matrix.copy()
        clone.set(0, 1, 9.0)
        assert matrix.get(0, 1) == 1.0

    def test_out_of_bounds(self):
        matrix = AdjacencyListMatrix(2)
        with pytest.raises(DimensionError):
            matrix.set(0, 2, 1.0)
        with pytest.raises(DimensionError):
            matrix.get(2, 0)


class TestVectorHelpers:
    def test_unit_vector(self):
        v = unit_vector(4, 2, 3.0)
        assert v.tolist() == [0.0, 0.0, 3.0, 0.0]
        with pytest.raises(DimensionError):
            unit_vector(4, 4)

    def test_seed_vector_spreads_mass(self):
        v = seed_vector(5, [0, 3], total=1.0)
        assert v[0] == pytest.approx(0.5)
        assert v[3] == pytest.approx(0.5)
        assert np.sum(v) == pytest.approx(1.0)

    def test_seed_vector_rejects_empty_and_out_of_range(self):
        with pytest.raises(DimensionError):
            seed_vector(5, [])
        with pytest.raises(DimensionError):
            seed_vector(5, [7])

    def test_sparse_dense_round_trip(self):
        sparse = {1: 2.0, 3: -1.0}
        dense = sparse_to_dense(5, sparse)
        assert dense_to_sparse(dense) == sparse

    def test_residual_norm(self):
        assert residual_norm([1.0, 2.0], [1.0, 2.5]) == pytest.approx(0.5)
        with pytest.raises(DimensionError):
            residual_norm([1.0], [1.0, 2.0])

    def test_top_k(self):
        indices, values = top_k([0.1, 0.9, 0.5], 2)
        assert indices.tolist() == [1, 2]
        assert values.tolist() == [0.9, 0.5]
        empty_indices, _ = top_k([0.1], 0)
        assert empty_indices.size == 0


class TestConversions:
    def test_scipy_round_trip(self, rng):
        pytest.importorskip("scipy.sparse")
        from repro.sparse.convert import from_scipy, to_scipy

        matrix = random_dd_matrix(8, 24, rng)
        converted = from_scipy(to_scipy(matrix))
        assert converted.allclose(matrix)

    def test_networkx_round_trip(self):
        nx = pytest.importorskip("networkx")
        from repro.sparse.convert import from_networkx, to_networkx

        matrix = SparseMatrix(3, {(0, 1): 2.0, (1, 2): 1.0, (2, 0): 4.0})
        graph = to_networkx(matrix, directed=True)
        assert isinstance(graph, nx.DiGraph)
        rebuilt = from_networkx(graph, nodelist=range(3))
        assert rebuilt.allclose(matrix)
