"""Tests for the SparseMatrix container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix, column_normalized_adjacency
from tests.conftest import random_dd_matrix


class TestConstruction:
    def test_from_entries_drops_zeros(self):
        matrix = SparseMatrix(3, {(0, 1): 2.0, (1, 2): 0.0})
        assert matrix.nnz == 1
        assert matrix.get(0, 1) == 2.0
        assert matrix.get(1, 2) == 0.0

    def test_from_triples_sums_duplicates(self):
        matrix = SparseMatrix.from_triples(3, [(0, 1, 1.0), (0, 1, 2.0)])
        assert matrix.get(0, 1) == pytest.approx(3.0)

    def test_from_dense_round_trip(self):
        dense = np.array([[1.0, 0.0], [2.0, 3.0]])
        matrix = SparseMatrix.from_dense(dense)
        assert np.allclose(matrix.to_dense(), dense)

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(DimensionError):
            SparseMatrix.from_dense(np.zeros((2, 3)))

    def test_identity_and_zeros(self):
        assert SparseMatrix.identity(3).nnz == 3
        assert SparseMatrix.zeros(3).nnz == 0

    def test_out_of_bounds_entry(self):
        with pytest.raises(DimensionError):
            SparseMatrix(2, {(0, 2): 1.0})

    def test_get_out_of_bounds(self):
        matrix = SparseMatrix.identity(2)
        with pytest.raises(DimensionError):
            matrix.get(2, 0)


class TestAccessors:
    def test_row_and_column(self):
        matrix = SparseMatrix(3, {(0, 1): 2.0, (2, 1): 5.0, (0, 0): 1.0})
        assert matrix.row(0) == {1: 2.0, 0: 1.0}
        assert matrix.column(1) == {0: 2.0, 2: 5.0}

    def test_items_and_entries(self):
        entries = {(0, 1): 2.0, (2, 2): -1.0}
        matrix = SparseMatrix(3, entries)
        assert matrix.entries() == entries
        assert {(i, j, v) for i, j, v in matrix.items()} == {(0, 1, 2.0), (2, 2, -1.0)}

    def test_pattern(self):
        matrix = SparseMatrix(3, {(0, 1): 2.0, (2, 2): -1.0})
        assert matrix.pattern().indices == frozenset({(0, 1), (2, 2)})

    def test_getitem(self):
        matrix = SparseMatrix(3, {(0, 1): 2.0})
        assert matrix[0, 1] == 2.0
        assert matrix[1, 1] == 0.0


class TestPredicates:
    def test_is_symmetric(self):
        symmetric = SparseMatrix(2, {(0, 1): 2.0, (1, 0): 2.0, (0, 0): 1.0})
        asymmetric = SparseMatrix(2, {(0, 1): 2.0})
        assert symmetric.is_symmetric()
        assert not asymmetric.is_symmetric()

    def test_diagonal_dominance(self, small_dd_matrix):
        assert small_dd_matrix.is_diagonally_dominant()
        weak = SparseMatrix(2, {(0, 0): 0.1, (0, 1): 5.0, (1, 1): 1.0})
        assert not weak.is_diagonally_dominant()


class TestAlgebra:
    def test_matvec_matches_dense(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        x = rng.random(12)
        assert np.allclose(matrix.matvec(x), matrix.to_dense() @ x)

    def test_rmatvec_matches_dense(self, rng):
        matrix = random_dd_matrix(12, 40, rng)
        x = rng.random(12)
        assert np.allclose(matrix.rmatvec(x), matrix.to_dense().T @ x)

    def test_matvec_wrong_length(self):
        with pytest.raises(DimensionError):
            SparseMatrix.identity(3).matvec([1.0, 2.0])

    def test_add_subtract_scale(self, rng):
        a = random_dd_matrix(8, 20, rng)
        b = random_dd_matrix(8, 20, rng)
        assert np.allclose((a + b).to_dense(), a.to_dense() + b.to_dense())
        assert np.allclose((a - b).to_dense(), a.to_dense() - b.to_dense())
        assert np.allclose(a.scale(2.5).to_dense(), 2.5 * a.to_dense())

    def test_transpose(self, rng):
        a = random_dd_matrix(8, 20, rng)
        assert np.allclose(a.transpose().to_dense(), a.to_dense().T)

    def test_dimension_mismatch_add(self):
        with pytest.raises(DimensionError):
            SparseMatrix.identity(2).add(SparseMatrix.identity(3))


class TestDeltaEntries:
    def test_delta_covers_additions_removals_and_changes(self):
        a = SparseMatrix(3, {(0, 1): 1.0, (1, 2): 2.0, (2, 2): 1.0})
        b = SparseMatrix(3, {(0, 1): 1.5, (2, 0): 3.0, (2, 2): 1.0})
        delta = a.delta_entries(b)
        assert delta[(0, 1)] == pytest.approx(0.5)
        assert delta[(1, 2)] == pytest.approx(-2.0)
        assert delta[(2, 0)] == pytest.approx(3.0)
        assert (2, 2) not in delta

    def test_applying_delta_recovers_target(self, rng):
        a = random_dd_matrix(10, 30, rng)
        b = random_dd_matrix(10, 30, rng)
        delta = a.delta_entries(b)
        rebuilt = a.to_dense()
        for (i, j), value in delta.items():
            rebuilt[i, j] += value
        assert np.allclose(rebuilt, b.to_dense())

    def test_empty_delta_for_identical(self, small_dd_matrix):
        assert small_dd_matrix.delta_entries(small_dd_matrix) == {}


class TestPermuted:
    def test_permuted_matches_definition(self, rng):
        matrix = random_dd_matrix(6, 18, rng)
        row_perm = list(rng.permutation(6))
        col_perm = list(rng.permutation(6))
        permuted = matrix.permuted(row_perm, col_perm)
        for r in range(6):
            for c in range(6):
                assert permuted.get(r, c) == matrix.get(row_perm[r], col_perm[c])

    def test_permuted_length_mismatch(self):
        with pytest.raises(DimensionError):
            SparseMatrix.identity(3).permuted([0, 1], [0, 1, 2])


class TestColumnNormalizedAdjacency:
    def test_columns_sum_to_one(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 0)]
        w = column_normalized_adjacency(3, edges)
        dense = w.to_dense()
        for node in range(3):
            assert np.isclose(dense[:, node].sum(), 1.0)

    def test_dangling_node_has_empty_column(self):
        w = column_normalized_adjacency(3, [(0, 1)])
        assert np.allclose(w.to_dense()[:, 2], 0.0)

    def test_out_of_bounds_edge(self):
        with pytest.raises(DimensionError):
            column_normalized_adjacency(2, [(0, 2)])


class TestExactZeroDropping:
    def test_triples_cancelling_to_zero_are_dropped(self):
        matrix = SparseMatrix.from_triples(3, [(0, 1, 2.0), (0, 1, -2.0), (1, 2, 1.0)])
        assert matrix.nnz == 1
        assert (0, 1) not in matrix.entries()

    def test_add_cancelling_entries_are_dropped(self):
        a = SparseMatrix(2, {(0, 1): 3.0, (1, 0): 1.0})
        b = SparseMatrix(2, {(0, 1): -3.0})
        total = a + b
        assert total.nnz == 1
        assert total.entries() == {(1, 0): 1.0}

    def test_scale_by_zero_is_empty(self, small_dd_matrix):
        assert small_dd_matrix.scale(0.0).nnz == 0

    def test_from_csr_arrays_drops_explicit_zeros(self):
        matrix = SparseMatrix.from_csr_arrays(2, [0, 2, 2], [0, 1], [1.0, 0.0])
        assert matrix.nnz == 1
        assert matrix.get(0, 1) == 0.0

    def test_from_coo_sums_then_drops(self):
        matrix = SparseMatrix.from_coo(2, [0, 0, 1], [1, 1, 1], [1.0, -1.0, 5.0])
        assert matrix.nnz == 1
        assert matrix.get(1, 1) == 5.0


class TestImmutability:
    def test_backing_arrays_are_read_only(self, small_dd_matrix):
        for array in (small_dd_matrix.indptr, small_dd_matrix.indices, small_dd_matrix.data):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 99

    def test_slots_prevent_new_attributes(self, small_dd_matrix):
        with pytest.raises(AttributeError):
            small_dd_matrix.extra = 1

    def test_transformations_leave_original_untouched(self, rng):
        matrix = random_dd_matrix(8, 24, rng)
        snapshot = matrix.entries()
        matrix.scale(3.0)
        matrix.transpose()
        matrix.add(SparseMatrix.identity(8))
        matrix.permuted(list(rng.permutation(8)), list(rng.permutation(8)))
        matrix.delta_entries(SparseMatrix.identity(8))
        assert matrix.entries() == snapshot

    def test_nnz_matches_data_length_and_items(self, small_dd_matrix):
        assert small_dd_matrix.nnz == small_dd_matrix.data.size
        assert small_dd_matrix.nnz == len(list(small_dd_matrix.items()))


class TestCSRLayout:
    def test_indptr_brackets_rows(self):
        matrix = SparseMatrix(3, {(0, 2): 1.0, (2, 0): 2.0, (2, 1): 3.0})
        assert matrix.indptr.tolist() == [0, 1, 1, 3]
        assert matrix.indices.tolist() == [2, 0, 1]
        assert matrix.data.tolist() == [1.0, 2.0, 3.0]

    def test_columns_strictly_increasing_within_rows(self, rng):
        matrix = random_dd_matrix(12, 50, rng)
        indptr = matrix.indptr
        indices = matrix.indices
        for i in range(12):
            row = indices[indptr[i]:indptr[i + 1]]
            assert np.all(np.diff(row) > 0)


@given(
    entries=st.dictionaries(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.floats(-10, 10, allow_nan=False),
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_dense_round_trip_property(entries):
    matrix = SparseMatrix(6, entries)
    rebuilt = SparseMatrix.from_dense(matrix.to_dense())
    assert rebuilt.allclose(matrix)
