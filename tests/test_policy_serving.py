"""The reuse-policy layer: extraction differentials and QC-aware serving.

Three contracts are pinned here:

* **Policy extraction is invisible** — the refactored LUDEM-QC drivers
  (thin wrappers over ``policy.decomposition_clusters``) produce bitwise the
  same decompositions as composing the β-clustering and cluster
  decomposition directly (the pre-refactor code path), and a planner under
  :class:`ExactPolicy` answers bitwise like a policy-less planner.
* **Gates hold by construction** — a :class:`QCPolicy` decision never
  carries a similarity below ``alpha`` or a loss estimate above
  ``loss_bound`` (hypothesis-swept), and every planner approximation record
  inherits that.
* **The loss estimate is a real bound** — the relative L1 deviation of an
  approximate answer from the exact answer never exceeds the reported
  estimate (it is the certified perturbation bound of
  :func:`repro.core.quality.reuse_loss_bound`).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    beta_clustering_cinc,
    beta_clustering_clude,
    clusters_cover_sequence,
)
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.problem import LUDEMQCProblem
from repro.core.qc import resolve_qc_policy, solve_qc_cinc, solve_qc_clude
from repro.core.quality import MarkowitzReference, reuse_loss_bound
from repro.core.similarity import snapshot_similarity
from repro.errors import ClusteringError, MeasureError
from repro.exec import canonical_sequence_state
from repro.graphs.delta import GraphDelta, snapshot_edit_similarity
from repro.graphs.matrixkind import MatrixKind, system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.timeseries import MeasureSeries
from repro.graphs.generators import growing_egs
from repro.policy import ExactPolicy, QCPolicy, ReuseDecision
from repro.query import QueryBatch, QueryPlanner
from repro.sparse.pattern import SparsityPattern, matrix_edit_similarity


def random_snapshot(rng: np.random.Generator, n: int, edges: int) -> GraphSnapshot:
    pool = set()
    while len(pool) < edges:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pool.add((int(u), int(v)))
    return GraphSnapshot(n, pool, directed=True)


def evolve(
    rng: np.random.Generator, snapshot: GraphSnapshot, additions: int, removals: int
) -> GraphSnapshot:
    existing = sorted(snapshot.edges)
    removed = set()
    for _ in range(min(removals, len(existing) - 1)):
        removed.add(existing[int(rng.integers(0, len(existing)))])
    added = set()
    while len(added) < additions:
        u, v = rng.integers(0, snapshot.n, size=2)
        if u != v and (int(u), int(v)) not in snapshot.edges:
            added.add((int(u), int(v)))
    return snapshot.with_edges(added=added, removed=removed)


def build_chain(seed: int, n: int = 40, steps: int = 6,
                additions: int = 2, removals: int = 1):
    rng = np.random.default_rng(seed)
    chain = [random_snapshot(rng, n, 4 * n)]
    for _ in range(steps - 1):
        chain.append(evolve(rng, chain[-1], additions, removals))
    return chain


# ---------------------------------------------------------------------- #
# Policy units
# ---------------------------------------------------------------------- #
class TestPolicyObjects:
    def test_exact_policy_never_reuses(self, tiny_graph):
        policy = ExactPolicy()
        assert policy.is_exact
        assert policy.name == "exact"
        clone = GraphSnapshot(tiny_graph.n, tiny_graph.edges)
        assert policy.evaluate_reuse(
            tiny_graph, clone, kind=MatrixKind.RANDOM_WALK, damping=0.85
        ) is None

    def test_qc_policy_validation(self):
        with pytest.raises(ClusteringError):
            QCPolicy(alpha=1.5)
        with pytest.raises(ClusteringError):
            QCPolicy(alpha=-0.1)
        with pytest.raises(ClusteringError):
            QCPolicy(loss_bound=-0.5)

    def test_identical_snapshots_reuse_at_zero_loss(self, tiny_graph):
        policy = QCPolicy(alpha=1.0, loss_bound=0.0)
        clone = GraphSnapshot(tiny_graph.n, tiny_graph.edges)
        decision = policy.evaluate_reuse(
            tiny_graph, clone, kind=MatrixKind.RANDOM_WALK, damping=0.85
        )
        assert decision == ReuseDecision(similarity=1.0, loss_estimate=0.0)

    def test_alpha_gate_rejects_dissimilar(self):
        a = GraphSnapshot(6, [(0, 1), (1, 2), (2, 3)])
        b = GraphSnapshot(6, [(3, 4), (4, 5), (5, 0)])
        assert QCPolicy(alpha=0.5, loss_bound=1e9).evaluate_reuse(
            a, b, kind=MatrixKind.RANDOM_WALK, damping=0.85
        ) is None

    def test_loss_gate_rejects_when_alpha_passes(self, rng):
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=3, removals=2)
        loose = QCPolicy(alpha=0.0, loss_bound=1e9)
        decision = loose.evaluate_reuse(
            before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85
        )
        assert decision is not None and decision.loss_estimate > 0.0
        tight = QCPolicy(alpha=0.0, loss_bound=decision.loss_estimate / 2.0)
        assert tight.evaluate_reuse(
            before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85
        ) is None

    def test_uncertified_kind_is_never_reused(self, rng):
        """SYMMETRIC_WALK has no proven ‖A⁻¹‖₁ bound: reuse must refuse."""
        before = random_snapshot(rng, 20, 60)
        after = evolve(rng, before, additions=1, removals=1)
        policy = QCPolicy(alpha=0.0, loss_bound=1e12)
        assert not policy.certifies_kind(MatrixKind.SYMMETRIC_WALK)
        assert policy.evaluate_reuse(
            before, after, kind=MatrixKind.SYMMETRIC_WALK, damping=0.85
        ) is None
        with pytest.raises(MeasureError):
            policy.loss_estimate(
                before, after, kind=MatrixKind.SYMMETRIC_WALK, damping=0.85
            )
        for kind in (MatrixKind.RANDOM_WALK, MatrixKind.SALSA_AUTHORITY,
                     MatrixKind.SALSA_HUB, MatrixKind.LAPLACIAN):
            assert policy.certifies_kind(kind)

    def test_symmetric_walk_spec_falls_through_to_cold(self, rng):
        from repro.query.spec import (
            MeasureSpec, get_spec, register_spec, unregister_spec,
        )

        spec = MeasureSpec(
            name="symwalk_teleport_test",
            kind=MatrixKind.SYMMETRIC_WALK,
            build_rhs=get_spec("pagerank").build_rhs,
        )
        register_spec(spec)
        try:
            before = random_snapshot(rng, 20, 60)
            after = evolve(rng, before, additions=1, removals=0)
            planner = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e12))
            from repro.query.spec import make_query

            planner.run(QueryBatch().add(make_query("symwalk_teleport_test", before)))
            outcome = planner.run(
                QueryBatch().add(make_query("symwalk_teleport_test", after))
            )
            assert outcome.stats.qc_reuses == 0
            assert outcome.stats.factorizations == 1
        finally:
            unregister_spec("symwalk_teleport_test")

    def test_prefilter_is_a_sound_upper_bound(self, rng):
        """prefilter rejects only pairs evaluate_reuse would reject anyway."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            a = random_snapshot(local, 18, int(local.integers(10, 60)))
            b = random_snapshot(local, 18, int(local.integers(10, 60)))
            for alpha in (0.0, 0.5, 0.9, 1.0):
                policy = QCPolicy(alpha=alpha, loss_bound=1e12)
                if not policy.prefilter(a, b):
                    assert snapshot_similarity(a, b) < alpha
                    assert policy.evaluate_reuse(
                        a, b, kind=MatrixKind.RANDOM_WALK, damping=0.85
                    ) is None
        # ExactPolicy's default prefilter never rejects.
        g = GraphSnapshot(3, [(0, 1)])
        assert ExactPolicy().prefilter(g, g)

    def test_mismatched_sizes_rejected(self, tiny_graph):
        other = GraphSnapshot(tiny_graph.n + 1, tiny_graph.edges)
        assert QCPolicy(alpha=0.0, loss_bound=1e9).evaluate_reuse(
            tiny_graph, other, kind=MatrixKind.RANDOM_WALK, damping=0.85
        ) is None

    def test_unknown_decomposition_flavor_raises(self, tiny_symmetric_ems):
        with pytest.raises(ClusteringError):
            QCPolicy().decomposition_clusters("BF", list(tiny_symmetric_ems))

    def test_exact_policy_clusters_are_zero_beta(self, tiny_symmetric_ems):
        matrices = list(tiny_symmetric_ems)
        reference = MarkowitzReference(symmetric=True)
        expected = beta_clustering_cinc(matrices, 0.0, MarkowitzReference(symmetric=True))
        assert ExactPolicy().decomposition_clusters("CINC", matrices, reference) == expected
        assert clusters_cover_sequence(expected, len(matrices))


class TestScoringIngredients:
    def test_snapshot_similarity_matches_pattern_mes(self, rng):
        for _ in range(5):
            a = random_snapshot(rng, 20, 60)
            b = evolve(rng, a, additions=4, removals=3)
            direct = matrix_edit_similarity(
                SparsityPattern(20, a.edges), SparsityPattern(20, b.edges)
            )
            assert snapshot_similarity(a, b) == pytest.approx(direct)
            delta = GraphDelta.between(a, b)
            assert snapshot_similarity(a, b, delta=delta) == snapshot_similarity(a, b)

    def test_empty_snapshots_are_identical(self):
        a = GraphSnapshot(4, [])
        b = GraphSnapshot(4, [])
        assert snapshot_edit_similarity(a, b) == 1.0

    def test_reuse_loss_bound_is_scaled_max_column_sum(self):
        entries = {(0, 1): 0.2, (2, 1): -0.3, (0, 0): 0.1}
        assert reuse_loss_bound(entries, 0.5) == pytest.approx((0.2 + 0.3) / 0.5)
        assert reuse_loss_bound({}, 0.85) == 0.0
        with pytest.raises(MeasureError):
            reuse_loss_bound(entries, 1.0)

    def test_policy_estimate_equals_system_delta_bound(self, rng):
        before = random_snapshot(rng, 25, 90)
        after = evolve(rng, before, additions=2, removals=1)
        policy = QCPolicy(alpha=0.0, loss_bound=1e9)
        entries = system_delta(before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85)
        assert policy.loss_estimate(
            before, after, kind=MatrixKind.RANDOM_WALK, damping=0.85
        ) == reuse_loss_bound(entries, 0.85)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        loss_bound=st.floats(min_value=0.0, max_value=20.0),
        damping=st.sampled_from([0.5, 0.85]),
    )
    def test_decisions_respect_declared_gates(self, seed, alpha, loss_bound, damping):
        """Any returned decision satisfies both gates — by construction."""
        rng = np.random.default_rng(seed)
        before = random_snapshot(rng, 20, 70)
        after = evolve(rng, before, additions=int(rng.integers(0, 5)),
                       removals=int(rng.integers(0, 3)))
        policy = QCPolicy(alpha=alpha, loss_bound=loss_bound)
        decision = policy.evaluate_reuse(
            before, after, kind=MatrixKind.RANDOM_WALK, damping=damping
        )
        if decision is not None:
            assert decision.similarity >= alpha
            assert decision.loss_estimate <= loss_bound
            assert decision.similarity == snapshot_similarity(before, after)


# ---------------------------------------------------------------------- #
# QC-aware serving through the planner
# ---------------------------------------------------------------------- #
class TestQCServing:
    def _serve_pair(self, policy, seed=7, **evolve_kw):
        rng = np.random.default_rng(seed)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=evolve_kw.get("additions", 2),
                       removals=evolve_kw.get("removals", 1))
        planner = QueryPlanner(policy=policy)
        planner.run(QueryBatch().add_pagerank(before))
        outcome = planner.run(QueryBatch().add_pagerank(after).add_rwr(after, 0))
        return before, after, planner, outcome

    def test_qc_reuse_answers_without_factorizing(self):
        before, after, planner, outcome = self._serve_pair(
            QCPolicy(alpha=0.5, loss_bound=50.0)
        )
        assert outcome.stats.qc_reuses == 1
        assert outcome.stats.factorizations == 0
        assert outcome.stats.refreshes == 0
        assert len(outcome.approximations) == 1
        record = outcome.approximations[0]
        assert record.positions == (0, 1)
        assert record.policy == "qc"
        assert record.parent_system == before
        assert record.system == after
        assert outcome.approximate_positions() == (0, 1)
        assert outcome.max_loss_estimate == record.loss_estimate

    def test_approximate_answer_within_certified_bound(self):
        _, after, _, outcome = self._serve_pair(QCPolicy(alpha=0.5, loss_bound=50.0))
        exact = QueryPlanner().run(QueryBatch().add_pagerank(after).add_rwr(after, 0))
        record = outcome.approximations[0]
        for approx, truth in zip(outcome, exact):
            denominator = float(np.sum(np.abs(truth)))
            deviation = float(np.sum(np.abs(approx - truth))) / denominator
            assert deviation <= record.loss_estimate

    def test_gate_failure_falls_through_to_cold(self):
        _, _, _, outcome = self._serve_pair(QCPolicy(alpha=0.999999, loss_bound=50.0))
        assert outcome.stats.qc_reuses == 0
        assert outcome.stats.factorizations == 1
        assert outcome.approximations == ()

    def test_qc_outranks_registered_lineage(self):
        rng = np.random.default_rng(11)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=2, removals=1)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.5, loss_bound=50.0))
        planner.run(QueryBatch().add_pagerank(before))
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.qc_reuses == 1
        assert outcome.stats.refreshes == 0

    def test_rejected_qc_falls_back_to_refresh(self):
        rng = np.random.default_rng(13)
        before = random_snapshot(rng, 30, 120)
        after = evolve(rng, before, additions=2, removals=1)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.5, loss_bound=0.0))
        planner.run(QueryBatch().add_pagerank(before))
        planner.register_evolution(before, after)
        outcome = planner.run(QueryBatch().add_pagerank(after))
        assert outcome.stats.qc_reuses == 0
        assert outcome.stats.refreshes == 1
        assert outcome.stats.factorizations == 0

    def test_matrix_param_specs_never_qc_reuse(self):
        rng = np.random.default_rng(17)
        before = random_snapshot(rng, 25, 90)
        after = evolve(rng, before, additions=1, removals=1)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
        planner.run(QueryBatch().add_hitting_time(before, 0))
        outcome = planner.run(QueryBatch().add_hitting_time(after, 0))
        assert outcome.stats.qc_reuses == 0
        assert outcome.stats.factorizations == 1

    def test_reuse_does_not_alias_the_factor_cache(self):
        before, after, planner, outcome = self._serve_pair(
            QCPolicy(alpha=0.5, loss_bound=50.0)
        )
        assert outcome.stats.qc_reuses == 1
        # The child key was never installed: the cache still holds only the
        # parent system, and a fresh exact planner answer differs from the
        # approximate one (different factors).
        assert planner.cache_info()["size"] == 1

    def test_best_candidate_wins_by_similarity(self):
        rng = np.random.default_rng(19)
        anchor = random_snapshot(rng, 30, 120)
        near = evolve(rng, anchor, additions=1, removals=0)
        far = evolve(rng, near, additions=8, removals=6)
        planner = QueryPlanner(policy=QCPolicy(alpha=0.0, loss_bound=1e9))
        planner.run(QueryBatch().add_pagerank(anchor).add_pagerank(far))
        outcome = planner.run(QueryBatch().add_pagerank(near))
        assert outcome.stats.qc_reuses == 1
        record = outcome.approximations[0]
        assert record.parent_system == anchor
        assert record.similarity == snapshot_similarity(anchor, near)

    def test_exact_policy_planner_is_bitwise_identical(self, tiny_graph):
        batch = (
            QueryBatch()
            .add_pagerank(tiny_graph)
            .add_rwr(tiny_graph, 1)
            .add_ppr(tiny_graph, [0, 2])
            .add_hitting_time(tiny_graph, 3)
        )
        default = QueryPlanner().run(batch)
        exact = QueryPlanner(policy=ExactPolicy()).run(batch)
        assert exact.stats == default.stats
        assert exact.approximations == ()
        for left, right in zip(exact, default):
            assert left.tobytes() == right.tobytes()

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        loss_bound=st.floats(min_value=0.0, max_value=30.0),
    )
    def test_served_chain_never_exceeds_declared_bound(self, seed, loss_bound):
        """Every approximation a QC planner emits respects its gates."""
        policy = QCPolicy(alpha=0.6, loss_bound=loss_bound)
        planner = QueryPlanner(policy=policy)
        for snapshot in build_chain(seed, n=25, steps=4):
            outcome = planner.run(
                QueryBatch().add_pagerank(snapshot).add_rwr(snapshot, 1)
            )
            for record in outcome.approximations:
                assert record.loss_estimate <= loss_bound
                assert record.similarity >= policy.alpha

    def test_chain_serving_reduces_factorizations(self):
        chain = build_chain(seed=23, n=40, steps=8, additions=2, removals=1)

        def serve(planner):
            total = 0
            for snapshot in chain:
                total += planner.run(QueryBatch().add_pagerank(snapshot)).stats.factorizations
            return total

        exact_count = serve(QueryPlanner())
        qc_count = serve(QueryPlanner(policy=QCPolicy(alpha=0.5, loss_bound=100.0)))
        assert exact_count == len(chain)
        assert qc_count < exact_count


# ---------------------------------------------------------------------- #
# Serving beyond a decomposed sequence (EMSSolver / MeasureSeries)
# ---------------------------------------------------------------------- #
class TestSequenceServing:
    def test_series_answers_evolved_head_from_seeded_factors(self):
        egs = growing_egs(nodes=30, snapshots=4, initial_edges=90,
                          edges_per_step=4, seed=5)
        series = MeasureSeries(
            egs, algorithm="BF", policy=QCPolicy(alpha=0.5, loss_bound=100.0)
        )
        series.pagerank([0])  # decompose + seed
        rng = np.random.default_rng(29)
        head = evolve(rng, egs[len(egs) - 1], additions=1, removals=1)
        outcome = series.run_batch(QueryBatch().add_pagerank(head))
        assert outcome.stats.qc_reuses == 1
        assert outcome.stats.factorizations == 0
        record = outcome.approximations[0]
        # The parent is one of the seeded index tokens, not a snapshot.
        assert record.parent_system[0] == "ems"

    def test_series_default_policy_still_cold_starts(self):
        egs = growing_egs(nodes=25, snapshots=3, initial_edges=70,
                          edges_per_step=4, seed=6)
        series = MeasureSeries(egs, algorithm="BF")
        series.pagerank([0])
        rng = np.random.default_rng(31)
        head = evolve(rng, egs[len(egs) - 1], additions=1, removals=1)
        outcome = series.run_batch(QueryBatch().add_pagerank(head))
        assert outcome.stats.qc_reuses == 0
        assert outcome.stats.factorizations == 1


# ---------------------------------------------------------------------- #
# The refactored LUDEM-QC drivers (policy extraction differential)
# ---------------------------------------------------------------------- #
class TestQCDriverExtraction:
    def test_resolve_policy_defaults_to_problem_beta(self, tiny_symmetric_ems):
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.25)
        policy = resolve_qc_policy(None, problem)
        assert isinstance(policy, QCPolicy)
        assert policy.loss_bound == 0.25
        explicit = QCPolicy(alpha=0.5, loss_bound=0.7)
        assert resolve_qc_policy(explicit, problem) is explicit

    @pytest.mark.parametrize("flavor", ["CINC", "CLUDE"])
    def test_driver_bitwise_equals_prerefactor_path(self, tiny_symmetric_ems, flavor):
        """The thin policy-driven driver == composing the pieces directly."""
        beta = 0.15
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=beta)
        matrices = list(tiny_symmetric_ems)
        if flavor == "CINC":
            clusters = beta_clustering_cinc(
                matrices, beta, MarkowitzReference(symmetric=True)
            )
            legacy = decompose_sequence_cinc(matrices, clusters=clusters)
            refactored = solve_qc_cinc(problem)
        else:
            clusters = beta_clustering_clude(
                matrices, beta, MarkowitzReference(symmetric=True)
            )
            legacy = decompose_sequence_clude(matrices, clusters=clusters)
            refactored = solve_qc_clude(problem)
        assert canonical_sequence_state(refactored) == canonical_sequence_state(legacy)
        assert refactored.cluster_count == len(clusters)

    @pytest.mark.parametrize("driver", [solve_qc_cinc, solve_qc_clude])
    def test_explicit_policy_matches_default(self, tiny_symmetric_ems, driver):
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=0.2)
        default = driver(problem)
        explicit = driver(problem, policy=QCPolicy(alpha=0.9, loss_bound=0.2))
        assert canonical_sequence_state(default) == canonical_sequence_state(explicit)

    @pytest.mark.parametrize("driver", [solve_qc_cinc, solve_qc_clude])
    def test_quality_constraint_still_enforced(self, tiny_symmetric_ems, driver):
        beta = 0.1
        problem = LUDEMQCProblem(ems=tiny_symmetric_ems, quality_requirement=beta)
        result = driver(problem)
        reference = MarkowitzReference(symmetric=True)
        losses = result.quality_losses(list(tiny_symmetric_ems), reference)
        assert max(losses) <= beta + 1e-12
