"""LUDEM-QC: decomposition with a guaranteed ordering quality (paper Section 5).

For symmetric matrix sequences (here: a DBLP-style co-authorship network) the
quality-loss of an ordering can be checked cheaply, so the cluster-based
algorithms can *guarantee* that every matrix's ordering stays within a
user-chosen bound β of the per-matrix Markowitz quality.  This example runs
CLUDE's β-clustering at several bounds and shows the quality/speed trade-off
of the paper's Figure 10.

Run with::

    python examples/quality_controlled_decomposition.py
"""

from __future__ import annotations

from repro.core import LUDEMQCProblem, MarkowitzReference, solve_qc_cinc, solve_qc_clude
from repro.datasets import load_dblp
from repro.graphs import EvolvingMatrixSequence, MatrixKind


def main() -> None:
    egs = load_dblp("tiny")
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    print(
        f"DBLP-style co-authorship EMS: {len(ems)} snapshots of {ems.n} authors "
        f"(symmetric: {ems.is_symmetric()})"
    )

    reference = MarkowitzReference(symmetric=True)
    matrices = list(ems)

    print(f"\n{'beta':>6} {'algorithm':>10} {'clusters':>9} {'avg quality-loss':>17} {'max quality-loss':>17}")
    for beta in (0.0, 0.05, 0.1, 0.2, 0.4):
        problem = LUDEMQCProblem(ems=ems, quality_requirement=beta)
        for name, driver in (("CINC-QC", solve_qc_cinc), ("CLUDE-QC", solve_qc_clude)):
            result = driver(problem, reference=reference)
            losses = result.quality_losses(matrices, reference)
            print(
                f"{beta:>6.2f} {name:>10} {result.cluster_count:>9d} "
                f"{sum(losses) / len(losses):>17.4f} {max(losses):>17.4f}"
            )

    print(
        "\nEvery row respects its β bound: looser bounds allow bigger clusters "
        "(fewer Markowitz orderings and full decompositions) at the price of more fill-ins."
    )


if __name__ == "__main__":
    main()
