"""Quickstart: decompose an evolving matrix sequence and answer queries.

This example walks through the library's core loop:

1. generate (or load) an evolving graph sequence,
2. compose the measure matrices ``A_i = I - d W_i``,
3. decompose every matrix with CLUDE (clustering + union ordering + one
   static structure per cluster + Bennett updates),
4. answer linear-system queries against every snapshot by forward/backward
   substitution, and check they are exact.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EMSSolver, EvolvingMatrixSequence
from repro.core import decompose_sequence_bf, MarkowitzReference
from repro.datasets import load_wiki
from repro.measures import pagerank_rhs


def main() -> None:
    # 1. A small simulated Wikipedia hyperlink sequence (80 pages, 12 days).
    egs = load_wiki("tiny")
    print(f"Graph sequence: {len(egs)} snapshots, {egs.n} nodes")
    print(f"Average successive similarity: {egs.average_successive_similarity():.4f}")

    # 2. Measure matrices for random-walk measures (PageRank / RWR / PPR).
    ems = EvolvingMatrixSequence.from_graphs(egs, damping=0.85)
    print(f"Matrix sequence: {len(ems)} matrices of dimension {ems.n}")

    # 3. Decompose every matrix with CLUDE.
    solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.95)
    result = solver.decompose()
    print(f"\nCLUDE used {result.cluster_count} cluster(s)")
    print(f"Timing breakdown: {result.timing.as_dict()}")
    print(f"Structural adjacency-list operations: {result.total_structural_ops} (CLUDE is always 0)")

    # 4. Answer queries: the PageRank right-hand side against every snapshot.
    b = pagerank_rhs(ems.n, damping=0.85)
    series = solver.solve_series(b)
    print(f"\nPageRank series shape: {series.shape} (snapshots x nodes)")
    residual = solver.verify()
    print(f"Worst solve residual across snapshots: {residual:.2e}")

    # Compare quality against the BF baseline (per-matrix Markowitz).
    reference = MarkowitzReference()
    bf = decompose_sequence_bf(list(ems))
    clude_loss = result.average_quality_loss(list(ems), reference)
    print(f"\nAverage quality-loss CLUDE: {clude_loss:.4f} (BF is 0 by definition)")
    print(f"Mean fill size CLUDE: {np.mean(result.fill_sizes):.0f}  BF: {np.mean(bf.fill_sizes):.0f}")


if __name__ == "__main__":
    main()
