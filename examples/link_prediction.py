"""Time-series link prediction with Random Walk with Restart (paper Example 3).

Classical link prediction ranks candidate endpoints by a proximity measure on
a single snapshot.  Once the whole matrix sequence is LU-decomposed (cheap
with CLUDE), the proximity of every candidate is available at *every*
snapshot, and the trend of the proximity becomes an extra predictive signal.
This example builds a synthetic evolving graph, hides the last snapshot, and
compares the trend-aware predictions against the edges that actually appear.

Run with::

    python examples/link_prediction.py
"""

from __future__ import annotations

from repro.analysis import predict_links
from repro.graphs.generators import generate_synthetic_egs, SyntheticEGSConfig


def main() -> None:
    config = SyntheticEGSConfig(
        nodes=120, edge_pool_size=1100, average_degree=4, delta_edges=24,
        snapshots=16, seed=21,
    )
    egs = generate_synthetic_egs(config)

    # Hide the final snapshot; it is the "future" we try to predict.
    observed = egs.subsequence(0, len(egs) - 1)
    future = egs[len(egs) - 1]
    print(f"Observed {len(observed)} snapshots of {egs.n} nodes; predicting snapshot {len(egs) - 1}")

    hits = 0
    evaluated = 0
    for source in range(0, 30, 3):
        predictions = predict_links(
            observed, source=source, top_k=5, algorithm="CLUDE", alpha=0.9
        )
        if not predictions:
            continue
        new_edges = future.successors(source) - observed[len(observed) - 1].successors(source)
        predicted_targets = [prediction.target for prediction in predictions]
        overlap = new_edges & set(predicted_targets)
        evaluated += 1
        if overlap or not new_edges:
            hits += 1
        print(
            f"node {source:3d}: predicted {predicted_targets} "
            f"| new edges next day {sorted(new_edges) if new_edges else '(none)'} "
            f"| hit={'yes' if overlap else ('n/a' if not new_edges else 'no')}"
        )
        top = predictions[0]
        print(
            f"          top candidate {top.target}: current RWR {top.current_score:.5f}, "
            f"trend {top.trend:+.2e}, combined score {top.combined_score:.5f}"
        )
    print(f"\nSources with a correct (or trivially satisfied) prediction: {hits}/{evaluated}")


if __name__ == "__main__":
    main()
