"""PageRank of a tracked page over an evolving Wikipedia-like graph (paper Figure 1).

The paper's motivating example tracks the PageRank score of one Wikipedia
page over 1000 daily snapshots and investigates the "key moments" at which
the score jumps or drops (new links from prominent pages, an endorser
diluting its outgoing links, a slow decline).  This example reproduces that
workflow on the simulated Wikipedia dataset: the whole matrix sequence is
decomposed once with CLUDE, the PageRank series of the tracked page is
extracted, and the step changes / trends are detected automatically.

Run with::

    python examples/pagerank_over_time.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import detect_step_changes, detect_trends, summarize_moments
from repro.datasets import WikiConfig, generate_wiki_egs
from repro.measures import MeasureSeries


def render_ascii_series(values, width: int = 60, height: int = 12) -> str:
    """Render a time series as a small ASCII chart (stand-in for Figure 1)."""
    values = np.asarray(values, dtype=float)
    low, high = float(np.min(values)), float(np.max(values))
    span = (high - low) or 1.0
    columns = np.linspace(0, len(values) - 1, num=min(width, len(values))).astype(int)
    sampled = values[columns]
    rows = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        row = "".join("*" if value >= threshold else " " for value in sampled)
        rows.append(f"{threshold:10.6f} |{row}")
    rows.append(" " * 11 + "+" + "-" * len(sampled))
    return "\n".join(rows)


def main() -> None:
    config = WikiConfig(pages=150, snapshots=40, initial_links=800, final_links=1700,
                        churn_per_day=4, tracked_page=17, event_gain_day=10,
                        event_dilute_day=25, seed=42)
    egs = generate_wiki_egs(config)
    print(f"Simulated Wikipedia EGS: {len(egs)} daily snapshots, {egs.n} pages")

    series = MeasureSeries(egs, damping=0.85, algorithm="CLUDE", alpha=0.95)
    tracked = config.tracked_page
    pagerank = series.pagerank([tracked])[:, 0]

    print(f"\nPageRank of page {tracked} over time (cf. paper Figure 1):")
    print(render_ascii_series(pagerank))

    steps = detect_step_changes(pagerank, relative_threshold=0.12)
    trends = detect_trends(pagerank, window=8, relative_threshold=0.15)
    print("\nKey moments (step changes):", summarize_moments(steps))
    print("Sustained trends:          ", summarize_moments(trends))
    print(
        f"\nScripted events were injected at snapshots #{config.event_gain_day} "
        f"(two prominent pages link to page {tracked}) and #{config.event_dilute_day} "
        "(the main endorser adds many outgoing links)."
    )


if __name__ == "__main__":
    main()
