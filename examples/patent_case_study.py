"""Company proximity over a patent citation sequence (paper Section 7, Figure 11).

The paper's case study seeds Personalized PageRank at one company's patents
(IBM) and sums the scores of every other company's patents, year by year, to
see whose technology the focal company increasingly depends on.  The company
whose rank climbs steadily (Harris, in the paper) signalled a coming alliance.
This example runs the same analysis on the simulated patent dataset, where a
designated "RISING" company plays the Harris role.

Run with::

    python examples/patent_case_study.py
"""

from __future__ import annotations

from repro.analysis import proximity_rankings
from repro.datasets import load_patent


def main() -> None:
    dataset = load_patent("small")
    egs = dataset.egs
    print(
        f"Patent citation EGS: {len(egs)} yearly snapshots, {egs.n} patents, "
        f"{len(dataset.company_names)} companies"
    )
    print(f"Focal company: {dataset.company_names[dataset.focal_company]}")

    rankings = proximity_rankings(dataset, damping=0.85, algorithm="CLUDE", alpha=0.9)

    header = "year  " + "  ".join(f"{name:>14s}" for name in rankings.company_names)
    print("\nProximity rank of each company w.r.t. the focal company (1 = closest):")
    print(header)
    print("-" * len(header))
    for year, year_ranks in enumerate(rankings.ranks):
        cells = "  ".join(f"{rank:>14d}" for rank in year_ranks)
        print(f"{year:4d}  {cells}")

    rising_index = rankings.company_names.index("RISING")
    series = rankings.rank_series(rising_index)
    print(
        f"\nThe RISING company's rank moved from {series[0]} to {series[-1]} "
        f"over {len(series)} years "
        f"({'steadily rising' if rankings.is_steadily_rising(rising_index) else 'not monotone'})."
    )
    print("In the paper this trajectory foreshadowed the IBM-Harris technology alliance.")


if __name__ == "__main__":
    main()
